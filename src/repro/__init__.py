"""Flumen: dynamic processing in the photonic interconnect — reproduction.

A full-system reproduction of the ISCA 2023 paper: a dual-purpose photonic
network-on-package that communicates between chiplets and, when network load
is low, computes linear algebra inside the interconnect.

Subpackages
-----------
``repro.photonics``
    MZI/MZIM transfer-matrix models, Clements decomposition, the Flumen
    fabric with its attenuator column and dynamic partitions, and the
    optical loss/power/noise models.
``repro.noc``
    Cycle-accurate network-on-package simulator: electrical ring/mesh
    wormhole routers, the shared optical bus, and the Flumen MZIM crossbar
    with wavefront arbitration.
``repro.core``
    The paper's contribution: the MZIM control unit, the Algorithm 1
    scheduler, the compute-offload mapping (block matmul, im2col), and the
    end-to-end system model.
``repro.multicore``
    Sniper/McPAT substitute: cache hierarchy, core throughput, per-component
    energy and area accounting.
``repro.workloads``
    The five evaluated applications, with golden NumPy references.
``repro.analysis``
    Speedup/EDP metrics, sweeps, and paper-style report rendering.
"""

from repro.config import (
    DEFAULT_DEVICES,
    DEFAULT_SYSTEM,
    DeviceParams,
    SystemConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_DEVICES",
    "DEFAULT_SYSTEM",
    "DeviceParams",
    "SystemConfig",
    "__version__",
]
