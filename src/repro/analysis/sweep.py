"""Generic parameter-sweep helpers for sensitivity studies.

Used by the Algorithm 1 sensitivity bench (tau / eta / zeta, Section 3.4)
and the ablation benches DESIGN.md calls out.  Since the engine PR, every
sweep executes through :class:`repro.analysis.engine.SweepEngine`:

* :func:`sweep` keeps the original callable-based API (inline, serial —
  arbitrary lambdas cannot cross process boundaries);
* :func:`sweep_task` maps a *registered* task name over a value range,
  which unlocks worker processes (``jobs``) and the on-disk result
  cache.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.analysis.engine import PointSpec, ResultCache, SweepEngine


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter setting."""

    parameter: str
    value: object
    metrics: dict[str, float]


def _points_for(parameter: str, values: list) -> list[PointSpec]:
    return [PointSpec(key=f"{parameter}[{i}]={value!r}",
                      params={"value": value})
            for i, value in enumerate(values)]


def sweep(parameter: str, values: Iterable[float],
          evaluate: Callable[[float], dict[str, float]]) -> list[SweepPoint]:
    """Evaluate ``evaluate(value)`` over a parameter range (inline)."""
    values = list(values)
    engine = SweepEngine(jobs=1)
    run = engine.run(lambda params, seed: evaluate(params["value"]),
                     _points_for(parameter, values))
    run.raise_failures()
    return [SweepPoint(parameter, value, result.metrics)
            for value, result in zip(values, run.results)]


def sweep_task(parameter: str, values: Iterable, task: str,
               value_param: str | None = None,
               base_params: dict | None = None, jobs: int = 1,
               cache: ResultCache | None = None,
               base_seed: int = 0) -> list[SweepPoint]:
    """Map a registered engine task over a value range.

    ``value_param`` names the task parameter the swept value binds to
    (defaults to ``parameter``); ``base_params`` carries the fixed
    parameters shared by every point.
    """
    values = list(values)
    value_param = value_param or parameter
    base = dict(base_params or {})
    points = [PointSpec(key=f"{task}/{parameter}[{i}]={value!r}",
                        params={**base, value_param: value})
              for i, value in enumerate(values)]
    engine = SweepEngine(jobs=jobs, cache=cache)
    run = engine.run(task, points, base_seed=base_seed)
    run.raise_failures()
    return [SweepPoint(parameter, value, result.metrics)
            for value, result in zip(values, run.results)]


def knee_of(points: list[SweepPoint], metric: str,
            drop_fraction: float = 0.5) -> float | None:
    """First parameter value where a metric falls below a fraction of its
    peak — how Section 3.4 locates tau > 170's service collapse."""
    if not points:
        return None
    peak = max(p.metrics[metric] for p in points)
    if peak <= 0:
        return None
    for p in points:
        if p.metrics[metric] < drop_fraction * peak:
            return p.value
    return None


def best_of(points: list[SweepPoint], metric: str,
            minimize: bool = False) -> SweepPoint:
    """Parameter setting optimizing one metric."""
    if not points:
        raise ValueError("no sweep points")

    def key(p: SweepPoint) -> float:
        return p.metrics[metric]

    return min(points, key=key) if minimize else max(points, key=key)
