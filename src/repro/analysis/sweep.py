"""Generic parameter-sweep helpers for sensitivity studies.

Used by the Algorithm 1 sensitivity bench (tau / eta / zeta, Section 3.4)
and the ablation benches DESIGN.md calls out.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated parameter setting."""

    parameter: str
    value: float
    metrics: dict[str, float]


def sweep(parameter: str, values: Iterable[float],
          evaluate: Callable[[float], dict[str, float]]) -> list[SweepPoint]:
    """Evaluate ``evaluate(value)`` over a parameter range."""
    return [SweepPoint(parameter, v, evaluate(v)) for v in values]


def knee_of(points: list[SweepPoint], metric: str,
            drop_fraction: float = 0.5) -> float | None:
    """First parameter value where a metric falls below a fraction of its
    peak — how Section 3.4 locates tau > 170's service collapse."""
    if not points:
        return None
    peak = max(p.metrics[metric] for p in points)
    if peak <= 0:
        return None
    for p in points:
        if p.metrics[metric] < drop_fraction * peak:
            return p.value
    return None


def best_of(points: list[SweepPoint], metric: str,
            minimize: bool = False) -> SweepPoint:
    """Parameter setting optimizing one metric."""
    if not points:
        raise ValueError("no sweep points")
    key = (lambda p: p.metrics[metric])
    return min(points, key=key) if minimize else max(points, key=key)
