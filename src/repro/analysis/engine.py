"""Parallel sweep/experiment execution engine with an on-disk result cache.

Every design-space exploration in the repository — the Figure 13/14/15
system sweep, the Algorithm 1 sensitivity scans, the network ablations —
is a map of one *task* over many *points*.  This module gives that map a
single execution substrate:

* **Parallelism.**  Points fan out across a
  :class:`concurrent.futures.ProcessPoolExecutor` (``jobs > 1``) or run
  inline (``jobs == 1``).  Results are always collected in input order,
  and every point gets a deterministic seed derived from ``(base_seed,
  point.key)``, so ``--jobs 1`` and ``--jobs N`` produce identical
  output.
* **Caching.**  Completed points are memoized in a content-addressed
  on-disk cache (JSON artifacts under ``.flumen_cache/`` by default).
  The cache key hashes the task name, the point parameters, the derived
  seed, the task's declared context (system/device parameter tables),
  and a digest of the ``repro`` source tree — editing any model source
  invalidates every cached result automatically.
* **Telemetry.**  Each run reports points evaluated, cache hits,
  failures, and wall/task time via :class:`RunTelemetry`; a per-point
  progress callback is available for long sweeps.
* **Failure isolation.**  A point that raises is recorded as a failed
  :class:`PointResult` (with the traceback) instead of aborting the
  sweep; callers that need all points use :meth:`SweepRun.raise_failures`.

Tasks that cross process boundaries must be registered by name (see
:func:`register_task`); plain callables are supported for inline runs.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
import time
import traceback
from collections.abc import Callable, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import NULL_OBS, Obs

#: Default cache location, overridable via the environment.
CACHE_DIR_ENV = "FLUMEN_CACHE_DIR"
DEFAULT_CACHE_DIR = ".flumen_cache"
#: Default worker count, overridable via the environment.
JOBS_ENV = "FLUMEN_JOBS"

_CACHE_SCHEMA = 1


def default_jobs(ceiling: int = 4) -> int:
    """Worker count for callers that did not choose one explicitly."""
    env = os.environ.get(JOBS_ENV)
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, min(ceiling, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# task registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TaskSpec:
    """A named, process-safe sweep task.

    ``fn(params, seed)`` returns a JSON-serializable metrics mapping.
    ``context`` (optional) returns extra state folded into the cache key
    — typically the default system/device parameter tables.
    """

    name: str
    fn: Callable[[dict, int], Mapping]
    context: Callable[[], Mapping] | None = None


_TASKS: dict[str, TaskSpec] = {}


def register_task(name: str, *, context: Callable[[], Mapping] | None = None):
    """Decorator: register ``fn(params, seed) -> metrics`` under ``name``."""
    def decorate(fn: Callable[[dict, int], Mapping]):
        _TASKS[name] = TaskSpec(name=name, fn=fn, context=context)
        return fn
    return decorate


def get_task(name: str) -> TaskSpec:
    """Look up a registered task, importing the built-in set on demand."""
    if name not in _TASKS:
        from repro.analysis import tasks as _builtin  # noqa: F401
    try:
        return _TASKS[name]
    except KeyError:
        raise KeyError(f"unknown task {name!r}; "
                       f"registered: {sorted(_TASKS)}") from None


# ----------------------------------------------------------------------
# hashing helpers
# ----------------------------------------------------------------------

def canonical_json(obj: object) -> str:
    """Stable JSON encoding used for hashing and cache payloads."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=str)


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of the ``repro`` source tree — the cache-invalidation rule.

    Any edit to any module under ``src/repro`` changes this digest and
    therefore every cache key, so stale results can never be served
    across code changes (see DESIGN.md).
    """
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\x00")
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def point_seed(base_seed: int, key: str) -> int:
    """Deterministic per-point seed: stable across runs and job counts."""
    digest = hashlib.sha256(f"{base_seed}\x1f{key}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


def cache_key(task: TaskSpec, params: Mapping, seed: int) -> str:
    """Content address of one sweep point."""
    context = task.context() if task.context else {}
    payload = {
        "task": task.name,
        "params": dict(params),
        "seed": seed,
        "context": context,
        "code": code_version(),
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


# ----------------------------------------------------------------------
# result cache
# ----------------------------------------------------------------------

class ResultCache:
    """Content-addressed JSON result store under one directory.

    Entries are written atomically (temp file + ``os.replace``) so
    concurrent sweeps sharing a cache directory never observe torn
    writes; unreadable or malformed entries are treated as misses and
    deleted, so a corrupted cache heals itself on the next run.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        root = root or os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """Return the cached payload for ``key``, or None on miss."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._discard(path)
            return None
        if (not isinstance(payload, dict)
                or payload.get("schema") != _CACHE_SCHEMA
                or not isinstance(payload.get("metrics"), dict)):
            self._discard(path)
            return None
        return payload

    def store(self, key: str, point_key: str, params: Mapping,
              seed: int, metrics: Mapping) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": _CACHE_SCHEMA,
            "key": key,
            "point": point_key,
            "params": dict(params),
            "seed": seed,
            "metrics": dict(metrics),
        }
        tmp = path.with_suffix(f".{os.getpid()}.tmp")
        tmp.write_text(canonical_json(payload))
        os.replace(tmp, path)

    def entries(self) -> int:
        """Number of cached results currently on disk."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointSpec:
    """One point of a sweep: a unique key plus JSON-serializable params."""

    key: str
    params: Mapping = field(default_factory=dict)


@dataclass
class PointResult:
    """Outcome of one sweep point, in input order."""

    key: str
    params: dict
    status: str                      # "ok" | "failed"
    metrics: dict | None = None
    error: str | None = None
    traceback: str | None = None
    seed: int = 0
    from_cache: bool = False
    duration_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def record(self) -> dict:
        """Deterministic artifact record (no timing / provenance noise)."""
        rec = {"key": self.key, "params": self.params,
               "status": self.status}
        if self.metrics is not None:
            rec["metrics"] = self.metrics
        if self.error is not None:
            rec["error"] = self.error
        return rec


@dataclass
class RunTelemetry:
    """Counters for one engine run."""

    total: int = 0
    evaluated: int = 0       # task executions (== SystemModel re-evals)
    cache_hits: int = 0
    failures: int = 0
    duration_s: float = 0.0
    task_seconds: float = 0.0

    def summary(self) -> str:
        return (f"points={self.total} cache_hits={self.cache_hits} "
                f"evaluated={self.evaluated} failures={self.failures} "
                f"elapsed={self.duration_s:.2f}s "
                f"task_time={self.task_seconds:.2f}s")

    def to_dict(self) -> dict:
        """JSON-ready snapshot (timing included; strip for determinism)."""
        return {
            "total": self.total,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "duration_s": self.duration_s,
            "task_seconds": self.task_seconds,
        }


@dataclass
class SweepRun:
    """Ordered results + telemetry for one engine run."""

    task: str
    results: list[PointResult]
    telemetry: RunTelemetry

    def ok_results(self) -> list[PointResult]:
        return [r for r in self.results if r.ok]

    def failed_results(self) -> list[PointResult]:
        return [r for r in self.results if not r.ok]

    def metrics(self) -> list[dict]:
        """Metrics of successful points, in input order."""
        return [r.metrics for r in self.results if r.ok]

    def records(self) -> list[dict]:
        """Deterministic records for JSON export (input order)."""
        return [r.record() for r in self.results]

    def raise_failures(self) -> SweepRun:
        """Raise if any point failed — for callers that need every point."""
        failed = self.failed_results()
        if failed:
            detail = "; ".join(f"{r.key}: {r.error}" for r in failed[:5])
            raise RuntimeError(
                f"{len(failed)}/{len(self.results)} sweep points failed "
                f"({detail})")
        return self


# ----------------------------------------------------------------------
# worker entry point (module-level: must pickle across processes)
# ----------------------------------------------------------------------

def _execute(fn: Callable[[dict, int], Mapping], params: dict,
             seed: int) -> dict:
    start = time.perf_counter()
    try:
        metrics = fn(dict(params), seed)
        if not isinstance(metrics, Mapping):
            raise TypeError(f"task returned {type(metrics).__name__}, "
                            f"expected a metrics mapping")
        return {"status": "ok", "metrics": dict(metrics),
                "duration_s": time.perf_counter() - start}
    except Exception as exc:
        return {"status": "failed",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
                "duration_s": time.perf_counter() - start}


def _run_named_point(task_name: str, params: dict, seed: int) -> dict:
    """Worker-side wrapper: resolve the task by name, then execute."""
    try:
        spec = get_task(task_name)
    except KeyError as exc:
        return {"status": "failed", "error": f"KeyError: {exc}",
                "traceback": traceback.format_exc(), "duration_s": 0.0}
    return _execute(spec.fn, params, seed)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

class SweepEngine:
    """Map a task over sweep points — in parallel, cached, telemetered.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` runs inline (no pool); ``>1`` fans
        points out over a :class:`ProcessPoolExecutor`.
    cache:
        A :class:`ResultCache`, or ``None`` to disable caching.  Only
        registered (named) tasks are cacheable — plain callables have no
        stable identity to hash.
    progress:
        Optional ``callback(done, total, result)`` invoked in the parent
        process as each point resolves.
    """

    def __init__(self, jobs: int = 1, cache: ResultCache | None = None,
                 progress: Callable[[int, int, PointResult], None]
                 | None = None, obs: Obs = NULL_OBS) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.obs = obs

    def run(self, task: str | Callable[[dict, int], Mapping],
            points: Sequence[PointSpec], base_seed: int = 0) -> SweepRun:
        """Evaluate ``task`` at every point; results keep input order."""
        start = time.perf_counter()
        keys = [p.key for p in points]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate point keys: {dupes[:5]}")

        spec = get_task(task) if isinstance(task, str) else None
        task_name = spec.name if spec else getattr(
            task, "__name__", "<callable>")
        telemetry = RunTelemetry(total=len(points))
        results: list[PointResult | None] = [None] * len(points)
        done = 0
        # Engine events use the point *index* as the cycle timestamp —
        # the engine has no simulation clock, and the index is the one
        # quantity that is identical across --jobs 1 and --jobs N.
        events = self.obs.events

        # Phase 1: serve cache hits.
        pending: list[tuple[int, PointSpec, int, str | None]] = []
        for i, point in enumerate(points):
            seed = point_seed(base_seed, point.key)
            ckey = None
            hit = False
            if spec is not None and self.cache is not None:
                ckey = cache_key(spec, point.params, seed)
                payload = self.cache.load(ckey)
                hit = payload is not None
                if hit:
                    results[i] = PointResult(
                        key=point.key, params=dict(point.params),
                        status="ok", metrics=payload["metrics"],
                        seed=seed, from_cache=True)
                    telemetry.cache_hits += 1
                    done += 1
            if events.enabled:
                events.emit("cache_hit" if hit else "cache_miss", i,
                            task=task_name, key=point.key)
            if hit:
                self._notify(done, len(points), results[i])
                continue
            pending.append((i, point, seed, ckey))

        # Phase 2: evaluate misses.
        by_index = {i: (point, seed, ckey)
                    for i, point, seed, ckey in pending}
        for i, outcome in self._evaluate(spec, task, pending):
            point, seed, ckey = by_index[i]
            result = PointResult(
                key=point.key, params=dict(point.params),
                status=outcome["status"], metrics=outcome.get("metrics"),
                error=outcome.get("error"),
                traceback=outcome.get("traceback"), seed=seed,
                duration_s=outcome.get("duration_s", 0.0))
            telemetry.evaluated += 1
            telemetry.task_seconds += result.duration_s
            if result.ok:
                if ckey is not None and self.cache is not None:
                    self.cache.store(ckey, point.key, point.params, seed,
                                     result.metrics)
            else:
                telemetry.failures += 1
            results[i] = result
            done += 1
            self._notify(done, len(points), result)

        telemetry.duration_s = time.perf_counter() - start
        final = [r for r in results if r is not None]
        assert len(final) == len(points)
        # Failure events are deferred to the end and emitted in input
        # order, so the event log is deterministic under jobs > 1 (pool
        # completion order is not).
        if events.enabled:
            for i, result in enumerate(final):
                if not result.ok:
                    events.emit("point_failed", i, task=task_name,
                                key=result.key, error=result.error or "")
        self._record_telemetry(task_name, telemetry)
        if self.obs.sampler is not None:
            # One end-of-run snapshot at the final point index; the
            # engine clock only advances at run boundaries.
            self.obs.sampler.sample(len(points))
        return SweepRun(task=task_name, results=final, telemetry=telemetry)

    def _record_telemetry(self, task_name: str,
                          telemetry: RunTelemetry) -> None:
        """Mirror the run counters into the metrics registry."""
        metrics = self.obs.metrics
        metrics.counter("engine.points_total", task=task_name).inc(
            telemetry.total)
        metrics.counter("engine.points_evaluated", task=task_name).inc(
            telemetry.evaluated)
        metrics.counter("engine.cache_hits", task=task_name).inc(
            telemetry.cache_hits)
        metrics.counter("engine.failures", task=task_name).inc(
            telemetry.failures)
        # Per-phase wall timing (count-only in deterministic snapshots).
        metrics.timer("engine.run_seconds", task=task_name).observe(
            telemetry.duration_s)
        if telemetry.evaluated:
            metrics.timer("engine.task_seconds", task=task_name).observe(
                telemetry.task_seconds)

    # ------------------------------------------------------------------

    def _evaluate(self, spec: TaskSpec | None, task, pending):
        """Yield ``(index, outcome)`` for every pending point."""
        if not pending:
            return
        if self.jobs > 1 and spec is not None and len(pending) > 1:
            yield from self._evaluate_pool(spec, pending)
            return
        fn = spec.fn if spec is not None else task
        for i, point, seed, _ckey in pending:
            yield i, _execute(fn, dict(point.params), seed)

    def _evaluate_pool(self, spec: TaskSpec, pending):
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_named_point, spec.name,
                            dict(point.params), seed): i
                for i, point, seed, _ckey in pending}
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                for fut in finished:
                    i = futures[fut]
                    try:
                        outcome = fut.result()
                    except Exception as exc:
                        # Pool-level breakage (worker killed, pickle
                        # error): record it against the point rather
                        # than aborting the sweep.
                        outcome = {
                            "status": "failed",
                            "error": f"{type(exc).__name__}: {exc}",
                            "traceback": traceback.format_exc(),
                            "duration_s": 0.0}
                    yield i, outcome

    def _notify(self, done: int, total: int, result: PointResult) -> None:
        if self.progress is not None:
            self.progress(done, total, result)
