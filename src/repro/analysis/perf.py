"""Pinned performance benchmark suite (``python -m repro perf``).

The harness that keeps the hot-path optimisations honest: a fixed set of
micro benchmarks (mesh propagation, WDM propagation, hop tracing, SVD
programming) and macro benchmarks (small system sweep, fault-campaign
smoke, an idle-network run) that

* measures wall time per benchmark **and** — for the vectorized photonic
  kernels — the in-run speedup over the retained ``_reference_*``
  oracles, so the ≥3x claim is re-proven on every machine rather than
  compared across machines;
* hashes every benchmark's simulation output (``digest``), so a perf
  regression can be told apart from a *correctness* regression: digests
  are seeded and machine-independent, and must match the committed
  baseline byte-for-byte;
* writes a ``BENCH_<rev>.json`` artifact (``rev`` is the engine's
  :func:`~repro.analysis.engine.code_version`, so artifacts pin the
  exact source tree they measured) and reports deltas against a
  committed baseline with a configurable wall-clock tolerance.

Wall times are machine-dependent; digests and speedup ratios are not.
The CI ``perf-smoke`` job therefore compares digests strictly and wall
times with a generous (2x) tolerance.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

import numpy as np

from repro.analysis.engine import (
    PointSpec,
    SweepEngine,
    canonical_json,
    code_version,
)

SCHEMA_VERSION = 1
DEFAULT_BASELINE = "BENCH_baseline.json"
DEFAULT_TOLERANCE = 2.0


def _digest_array(arr: np.ndarray) -> str:
    """Machine-independent content hash of one ndarray."""
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(np.ascontiguousarray(arr).tobytes())
    return h.hexdigest()


def _digest_json(obj: object) -> str:
    """Content hash of a JSON-serializable object (canonical form)."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def _time_calls(fn, reps: int) -> float:
    """Mean seconds per call over ``reps`` invocations."""
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def _programmed_mesh(n: int):
    from repro.photonics.clements import decompose, random_unitary
    return decompose(random_unitary(n, np.random.default_rng(n)))


def _fixed_fields(n: int, width: int | None = None) -> np.ndarray:
    rng = np.random.default_rng(1000 + n + (width or 0))
    shape = (n,) if width is None else (n, width)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


# ----------------------------------------------------------------------
# micro benchmarks
# ----------------------------------------------------------------------


def _bench_propagate(n: int, small: bool,
                     width: int | None = None) -> dict:
    mesh = _programmed_mesh(n)
    fields = _fixed_fields(n, width)
    mesh.propagate(fields)  # warm the propagation plan
    reps = {16: 12, 32: 8, 64: 5}.get(n, 5) if small \
        else {16: 60, 32: 30, 64: 15}.get(n, 10)
    ref_reps = max(2, reps // 5)
    vec_s = _time_calls(lambda: mesh.propagate(fields), reps)
    ref_s = _time_calls(lambda: mesh._reference_propagate(fields), ref_reps)
    return {
        "wall_s": vec_s * reps,
        "per_call_s": vec_s,
        "reference_per_call_s": ref_s,
        "speedup_vs_reference": ref_s / vec_s if vec_s > 0 else float("inf"),
        "meta": {"n": n, "width": width},
        "digest": _digest_array(mesh.propagate(fields)),
    }


def _bench_trace_hops(n: int, small: bool) -> dict:
    from repro.photonics.clements import _trace_hops
    mesh = _programmed_mesh(n)
    reps = 1 if small else 3
    # _trace_hops directly: the memo would make later reps free.
    cold_s = _time_calls(lambda: _trace_hops(mesh), reps)
    mesh.mzis_per_path()
    warm_s = _time_calls(mesh.mzis_per_path, 10)
    return {
        "wall_s": cold_s * reps,
        "per_call_s": cold_s,
        "memoized_per_call_s": warm_s,
        "meta": {"n": n},
        "digest": _digest_array(np.asarray(mesh.mzis_per_path())),
    }


def _bench_svd_cache(n: int, small: bool) -> dict:
    from repro.photonics.svd import clear_svd_cache, program_svd
    rng = np.random.default_rng(2000 + n)
    matrix = rng.standard_normal((n, n))
    clear_svd_cache()
    t0 = time.perf_counter()
    program = program_svd(matrix)
    cold_s = time.perf_counter() - t0
    reps = 3 if small else 10
    warm_s = _time_calls(lambda: program_svd(matrix), reps)
    return {
        "wall_s": cold_s,
        "per_call_s": cold_s,
        "memoized_per_call_s": warm_s,
        "speedup_vs_cold": cold_s / warm_s if warm_s > 0 else float("inf"),
        "meta": {"n": n},
        "digest": _digest_array(program.matrix()),
    }


def _bench_mesh_depth(architecture: str, n: int, small: bool) -> dict:
    """Decompose + propagate one architecture; depth/device accounting.

    The digest covers the reconstructed matrix and a fixed-field
    propagation, so a change in any architecture's factorization or
    column packing fails the baseline compare, and the record carries
    the depth/device counts the energy model bills for.
    """
    from repro.photonics.clements import random_unitary
    from repro.photonics.registry import make_mesh

    arch = make_mesh(architecture)
    u = random_unitary(n, np.random.default_rng(3000 + n))
    fields = _fixed_fields(n)
    reps = 2 if small else 6
    dec_s = _time_calls(lambda: arch.decompose(u), reps)
    mesh = arch.decompose(u)
    arch.propagate(mesh, fields)  # warm the propagation plan
    prop_s = _time_calls(lambda: arch.propagate(mesh, fields),
                         reps * 10)
    return {
        "wall_s": dec_s * reps,
        "per_call_s": dec_s,
        "propagate_per_call_s": prop_s,
        "meta": {"architecture": architecture, "n": n,
                 "depth_bound": arch.depth(n),
                 "measured_columns": mesh.num_columns,
                 "device_count": arch.device_count(n),
                 "passes": arch.passes(n)},
        "digest": _digest_array(np.concatenate([
            arch.matrix(mesh).ravel(),
            arch.propagate(mesh, fields).ravel()])),
    }


def _run_noc_kernel(topology: str, nodes: int, traffic_fn, cycles: int,
                    warmup: int, vectorized: bool) -> tuple[float, dict]:
    """One timed network run; returns (wall seconds, output summary)."""
    from repro.noc.simulation import make_network

    net = make_network(topology, nodes, vectorized=vectorized)
    traffic = traffic_fn()
    t0 = time.perf_counter()
    net.run(traffic, cycles=cycles, warmup=warmup, drain=True)
    wall = time.perf_counter() - t0
    summary = {
        "latency": net.latency.to_dict(),
        "injected": net.injected_packets,
        "flit_hops": net.flit_hops,
        "link_traversals": net.link_traversals,
        "cycles": net.cycle,
        "utilization": net.utilization.to_dict(),
    }
    return wall, summary


def _bench_noc_kernel(topology: str, nodes: int, traffic_fn, cycles: int,
                      warmup: int, meta: dict) -> dict:
    """SoA-vs-oracle kernel bench: both legs run, outputs must agree.

    Like :func:`_bench_propagate` on the photonic side, the speedup is
    measured in-run against the per-object oracle on the same machine,
    and the record's digest covers output both implementations produced
    identically — a silent divergence fails the bench itself.
    """
    wall, summary = _run_noc_kernel(topology, nodes, traffic_fn,
                                    cycles, warmup, vectorized=True)
    ref_wall, ref_summary = _run_noc_kernel(topology, nodes, traffic_fn,
                                            cycles, warmup,
                                            vectorized=False)
    if summary != ref_summary:
        raise RuntimeError(
            f"{topology} SoA kernel diverged from the per-object oracle: "
            f"{_digest_json(summary)[:12]} != "
            f"{_digest_json(ref_summary)[:12]}")
    return {
        "wall_s": wall,
        "per_call_s": wall / cycles,
        "reference_per_call_s": ref_wall / cycles,
        "speedup_vs_reference": ref_wall / wall if wall > 0 else float("inf"),
        "meta": meta,
        "digest": _digest_json(summary),
    }


def _bench_noc_idle(small: bool) -> dict:
    from repro.noc.traffic import TrafficGenerator

    nodes, cycles, load = 64, 2500, 0.02
    return _bench_noc_kernel(
        "mesh", nodes,
        lambda: TrafficGenerator(nodes, "uniform", load, seed=5),
        cycles, cycles // 3,
        meta={"nodes": nodes, "cycles": cycles, "load": load,
              "topology": "mesh"})


def _bench_noc_step(small: bool) -> dict:
    """Busy-network per-cycle stepping cost (no idle to skip)."""
    from repro.noc.traffic import TrafficGenerator

    nodes, cycles, load = 16, 4000, 0.8
    return _bench_noc_kernel(
        "mesh", nodes,
        lambda: TrafficGenerator(nodes, "uniform", load, seed=5),
        cycles, cycles // 8,
        meta={"nodes": nodes, "cycles": cycles, "load": load,
              "topology": "mesh"})


def _bench_noc_trace(small: bool) -> dict:
    """Bursty trace replay: the system model's NoP usage pattern.

    Packet bursts separated by long quiescent stretches — the shape
    workload-derived traces take.  The SoA backends fast-forward the
    idle stretches (the oracle steps them one by one), so this is where
    the kernel restructuring pays off end-to-end.
    """
    from repro.noc.traffic import TracePlayback

    nodes, bursts, gap = 16, 24, 2500
    events = []
    for b in range(bursts):
        start = b * gap
        for i in range(40):
            src = (i * 5 + b) % nodes
            dst = (i * 11 + 3 * b + 7) % nodes
            events.append((start + i // 8, src, dst, 3))
    cycles = bursts * gap
    return _bench_noc_kernel(
        "mesh", nodes, lambda: TracePlayback(list(events)),
        cycles, gap,
        meta={"nodes": nodes, "bursts": bursts, "gap": gap,
              "cycles": cycles, "topology": "mesh"})


# ----------------------------------------------------------------------
# macro benchmarks (through the sweep engine, deterministic seeding)
# ----------------------------------------------------------------------


def _bench_sweep(workloads: list[str], configs: list[str]) -> dict:
    """System sweep through the engine, plus a per-object-oracle leg.

    The grid runs twice: once on the default (struct-of-arrays) NoP
    backends and once pinned to the per-object oracles.  Every metric of
    every point must match exactly — the sweep bench doubles as the
    end-to-end bit-identity check — and the record reports the measured
    in-run speedup alongside the digest.
    """
    def grid(vectorized: bool | None):
        extra = {} if vectorized is None else {"vectorized": vectorized}
        return [PointSpec(key=f"{wl}/{cfg}",
                          params={"workload": wl, "configuration": cfg,
                                  "shapes": "small", **extra})
                for wl in workloads for cfg in configs]

    engine = SweepEngine(jobs=1, cache=None)
    run = engine.run("system_point", grid(None), base_seed=17)
    if run.failed_results():
        raise RuntimeError(
            f"sweep benchmark failed: {run.failed_results()[0].error}")
    ref_run = engine.run("system_point", grid(False), base_seed=17)
    if ref_run.failed_results():
        raise RuntimeError(f"sweep reference leg failed: "
                           f"{ref_run.failed_results()[0].error}")
    if run.metrics() != ref_run.metrics():
        raise RuntimeError(
            "sweep metrics diverged between the struct-of-arrays "
            "backends and the per-object oracles")
    wall = run.telemetry.duration_s
    ref_wall = ref_run.telemetry.duration_s
    points = len(run.results)
    return {
        "wall_s": wall,
        "per_call_s": wall / points,
        "reference_per_call_s": ref_wall / points,
        "speedup_vs_reference": ref_wall / wall if wall > 0 else float("inf"),
        "meta": {"workloads": workloads, "configs": configs,
                 "shapes": "small", "base_seed": 17},
        "digest": _digest_json(run.records()),
    }


def _bench_sweep_2x2(small: bool) -> dict:
    return _bench_sweep(["image_blur", "rotation3d"], ["mesh", "flumen_a"])


def _bench_sweep_full(small: bool) -> dict:
    from repro.core.pipelines import configuration_names
    from repro.workloads import WORKLOAD_NAMES
    return _bench_sweep(list(WORKLOAD_NAMES), list(configuration_names()))


def _bench_mvm_batch(small: bool) -> dict:
    """Fleet-wide stacked MVM dispatch vs. sequential block evaluation.

    A fleet of block-matmul offloads (the matrix-memory contents of
    several cores) runs once through :func:`block_matmul_many` — one
    stacked ``(B, k, 2, 2)`` kernel pass — and once block-by-block.
    Outputs must agree bit-for-bit; the record reports the measured
    stacking speedup.
    """
    from repro.core.accelerator import BlockMatmul, block_matmul_many

    fleet, size, q = 8, 16, 16
    rng = np.random.default_rng(23)
    jobs = [(BlockMatmul(rng.normal(size=(size, size)), mzim_size=8),
             rng.normal(size=(size, q)))
            for _ in range(fleet)]
    reps = 20 if small else 60

    def batched():
        return block_matmul_many(jobs)

    def sequential():
        return [matmul(vectors, batched=False)
                for matmul, vectors in jobs]

    got, want = batched(), sequential()
    for g, w in zip(got, want):
        if not np.array_equal(g, w):
            raise RuntimeError(
                "stacked MVM dispatch diverged from sequential evaluation")
    vec_s = _time_calls(batched, reps)
    ref_s = _time_calls(sequential, max(2, reps // 5))
    return {
        "wall_s": vec_s * reps,
        "per_call_s": vec_s,
        "reference_per_call_s": ref_s,
        "speedup_vs_reference": ref_s / vec_s if vec_s > 0 else float("inf"),
        "meta": {"fleet": fleet, "size": size, "vectors": q,
                 "mzim_size": 8, "reps": reps},
        "digest": _digest_array(np.concatenate([g.ravel() for g in got])),
    }


def _bench_fault_smoke(small: bool) -> dict:
    points = [PointSpec(key="stuck_mzi/m1",
                        params={"fault": "stuck_mzi", "magnitude": 1.0,
                                "runs": 1, "cycles": 600,
                                "golden_reference": False})]
    engine = SweepEngine(jobs=1, cache=None)
    run = engine.run("fault_point", points, base_seed=0)
    if run.failed_results():
        raise RuntimeError(
            f"fault benchmark failed: {run.failed_results()[0].error}")
    return {
        "wall_s": run.telemetry.duration_s,
        "meta": {"fault": "stuck_mzi", "runs": 1, "cycles": 600,
                 "base_seed": 0},
        "digest": _digest_json(run.records()),
    }


def _bench_telemetry_overhead(small: bool) -> dict:
    """Streaming-telemetry cost gate over a small system grid.

    Runs the 2x2 ``{image_blur, rotation3d} x {mesh, flumen_a}`` grid
    (small shapes) twice per rep — once with :data:`NULL_OBS`, once with
    the streaming :meth:`Obs.telemetry` bundle — and takes the min over
    reps for each leg.  Two hard gates ride on the record:

    * **overhead** — the telemetry leg may cost at most 5% over the
      null leg (plus a 5 ms absolute slack absorbing scheduler jitter
      on sub-100ms measurements);
    * **determinism** — every rep's event log + snapshot series must be
      byte-identical (the record's digest is that canonical payload, so
      the committed baseline also pins it across machines).

    The record carries estimated latency quantiles from the telemetry
    leg's histograms (surfaced in the perf markdown summary).
    """
    from repro.analysis.tasks import _find_workload
    from repro.core.system import SystemModel
    from repro.obs import NULL_OBS, Obs

    grid = [("image_blur", "mesh"), ("image_blur", "flumen_a"),
            ("rotation3d", "mesh"), ("rotation3d", "flumen_a")]
    workloads = {name: _find_workload(name, "small")
                 for name in dict.fromkeys(wl for wl, _ in grid)}

    def leg(obs_factory) -> tuple[float, list]:
        bundles = []
        t0 = time.perf_counter()
        for wl, cfg in grid:
            obs = obs_factory()
            SystemModel(traffic_seed=17, obs=obs).run(workloads[wl], cfg)
            bundles.append(obs)
        return time.perf_counter() - t0, bundles

    reps = 2 if small else 3
    null_s = min(leg(lambda: NULL_OBS)[0] for _ in range(reps))
    telem_s = float("inf")
    payloads: list[str] = []
    bundles: list = []
    for _ in range(reps):
        wall, run_bundles = leg(
            lambda: Obs.telemetry(snapshot_interval=256))
        telem_s = min(telem_s, wall)
        payloads.append(canonical_json([
            {"events": list(obs.events.events),
             "snapshots": obs.sampler.series}
            for obs in run_bundles]))
        bundles = run_bundles
    if len(set(payloads)) != 1:
        raise RuntimeError(
            "telemetry output is not deterministic: identical same-seed "
            "reps produced differing event/snapshot payloads")
    overhead = (telem_s - null_s) / null_s if null_s > 0 else 0.0
    if telem_s - null_s > max(0.05 * null_s, 0.005):
        raise RuntimeError(
            f"streaming telemetry overhead {overhead:.1%} exceeds the 5% "
            f"budget ({telem_s:.4f}s vs {null_s:.4f}s over the null "
            f"bundle)")

    quantiles: dict[str, dict] = {}
    for (wl, cfg), obs in zip(grid, bundles):
        for kind, key, name, _labels, inst in obs.metrics.iter_series():
            if kind != "histogram" or not inst.count:
                continue
            quantiles[f"{wl}/{cfg}:{key}"] = {
                "count": inst.count,
                "p50": round(inst.quantile(0.50), 3),
                "p95": round(inst.quantile(0.95), 3),
                "p99": round(inst.quantile(0.99), 3),
            }
    events = sum(len(obs.events) for obs in bundles)
    snapshots = sum(len(obs.sampler) for obs in bundles)
    return {
        "wall_s": telem_s,
        "per_call_s": telem_s / len(grid),
        "reference_per_call_s": null_s / len(grid),
        "overhead_fraction": round(overhead, 4),
        "quantiles": quantiles,
        "meta": {"grid": [f"{wl}/{cfg}" for wl, cfg in grid],
                 "shapes": "small", "traffic_seed": 17,
                 "snapshot_interval": 256, "events": events,
                 "snapshots": snapshots},
        "digest": hashlib.sha256(payloads[0].encode()).hexdigest(),
    }


def _run_serve_saturation(rates, duration: int,
                          vectorized: bool) -> tuple[float, list[dict]]:
    """One timed saturation sweep on the chosen serve hot loop."""
    from repro.serve import ServeConfig, ServeDaemon

    points: list[dict] = []
    t0 = time.perf_counter()
    for rate in rates:
        report = ServeDaemon(ServeConfig(
            duration=duration, seed=0, rate=rate),
            vectorized=vectorized).run()
        points.append({
            "rate": rate,
            "ledger": report["ledger"],
            "latency": report["latency"],
            "goodput_per_kcycle": round(
                report["goodput_per_kcycle"], 3),
            "electrical_completions":
                report["electrical_completions"],
            "conserved": report["conserved"],
            "drained": report["drained"],
        })
    return time.perf_counter() - t0, points


def _bench_serve_saturation(small: bool) -> dict:
    """Offered load vs latency/goodput of the serving daemon.

    Runs seeded `repro serve` sessions at increasing per-tenant arrival
    rates and records the p50/p95/p99 request latency and goodput at
    each point — the saturation curve EXPERIMENTS.md plots.  The sweep
    runs on the vectorized hot loop, then again on the per-cycle
    oracle: like the NoC kernel benches, the two point lists must be
    byte-identical (a silent divergence fails the bench itself) and the
    in-run speedup is recorded alongside.  Further gates: every session
    must conserve its admission ledger (offered == admitted + rejected
    == completed + rejected at drain) and drain completely; the digest
    pins the full point list, so any drift in arrivals, admission,
    batching, or scheduling shows up as a baseline digest mismatch,
    machine-independently.
    """
    rates = (0.02, 0.06, 0.12) if small else \
        (0.02, 0.04, 0.08, 0.12, 0.20)
    duration = 2048 if small else 4096
    wall, points = _run_serve_saturation(rates, duration,
                                         vectorized=True)
    ref_wall, ref_points = _run_serve_saturation(rates, duration,
                                                 vectorized=False)
    if points != ref_points:
        raise RuntimeError(
            "vectorized serve loop diverged from the per-cycle "
            f"oracle: {_digest_json(points)[:12]} != "
            f"{_digest_json(ref_points)[:12]}")
    broken = [p["rate"] for p in points
              if not (p["conserved"] and p["drained"])]
    if broken:
        raise RuntimeError(
            f"serve sessions violated the admission ledger or failed "
            f"to drain at rates {broken}")
    quantiles = {
        f"rate{p['rate']:g}:{kind}": {
            "count": p["latency"][kind]["count"],
            "p50": p["latency"][kind]["p50"],
            "p95": p["latency"][kind]["p95"],
            "p99": p["latency"][kind]["p99"],
        }
        for p in points for kind in ("mvm", "comm")
        if p["latency"][kind]["count"]}
    return {
        "wall_s": wall,
        "per_call_s": wall / len(rates),
        "reference_per_call_s": ref_wall / len(rates),
        "speedup_vs_reference": round(ref_wall / wall, 2),
        "quantiles": quantiles,
        "meta": {"rates": list(rates), "duration": duration,
                 "seed": 0, "arrival": "poisson",
                 "goodput_per_kcycle": [p["goodput_per_kcycle"]
                                        for p in points]},
        "digest": _digest_json(points),
    }


#: Cluster scaling the serve_cluster bench must demonstrate (simulated
#: goodput of 4 tenant-sharded replicas over the single shared fabric).
SERVE_CLUSTER_MIN_SCALING = 2.5

#: One cluster run feeds both serve_cluster/* records (keyed by suite).
_serve_cluster_memo: dict[bool, dict[int, dict]] = {}


def _bench_serve_cluster(replicas: int, small: bool) -> dict:
    """Replica-sharded serving tier: simulated capacity scaling.

    One saturated 12-tenant session is served by a single daemon
    (``replicas1`` — every tenant contends for one photonic fabric)
    and by four tenant-sharded replicas (``replicas4`` — each with its
    own fabric).  Offered streams are byte-identical in both shapes
    (per-tenant RNGs are name-keyed), so completed-request goodput per
    *simulated* kilocycle isolates fabric capacity from wall-clock and
    core count; the 4-replica cluster must clear
    ``SERVE_CLUSTER_MIN_SCALING`` or the bench itself fails.  Both
    records come from one memoized pair of runs and their digests pin
    ledger, latency quantiles, and per-replica completion counts.
    """
    from repro.serve import ReplicaSet, ServeConfig

    runs = _serve_cluster_memo.get(small)
    if runs is None:
        config = ServeConfig(duration=2048, seed=0, rate=0.2,
                             tenants=12)
        runs = {}
        for r in (1, 4):
            t0 = time.perf_counter()
            report = ReplicaSet(config, r).run(jobs=1)
            wall = time.perf_counter() - t0
            point = {
                "replicas": r,
                "cycles": report["cycles"],
                "ledger": report["ledger"],
                "latency": report["latency"],
                "goodput_per_kcycle": round(
                    report["goodput_per_kcycle"], 3),
                "conserved": report["conserved"],
                "drained": report["drained"],
                "per_replica": [
                    {"tenants": rep["tenants"],
                     "cycles": rep["cycles"],
                     "completed": rep["completed"]}
                    for rep in report["per_replica"]],
            }
            if not (point["conserved"] and point["drained"]):
                raise RuntimeError(
                    f"serve cluster (replicas={r}) violated the "
                    "admission ledger or failed to drain")
            runs[r] = {"wall_s": wall, "point": point}
        scaling = (runs[4]["point"]["goodput_per_kcycle"]
                   / runs[1]["point"]["goodput_per_kcycle"])
        if scaling < SERVE_CLUSTER_MIN_SCALING:
            raise RuntimeError(
                f"serve cluster scaling {scaling:.2f}x below the "
                f"{SERVE_CLUSTER_MIN_SCALING}x gate")
        for r in (1, 4):
            runs[r]["scaling"] = round(scaling, 3)
        _serve_cluster_memo[small] = runs
    run = runs[replicas]
    point = run["point"]
    return {
        "wall_s": run["wall_s"],
        "per_call_s": run["wall_s"],
        "meta": {"replicas": replicas, "tenants": 12, "rate": 0.2,
                 "duration": 2048, "seed": 0,
                 "goodput_per_kcycle": point["goodput_per_kcycle"],
                 "cycles": point["cycles"],
                 "scaling_vs_replicas1": run["scaling"]},
        "digest": _digest_json(point),
    }


#: The pinned suite: (name, in_small_suite, callable(small) -> record).
BENCHMARKS: list[tuple[str, bool, object]] = [
    ("mesh_propagate/n16", True,
     lambda small: _bench_propagate(16, small)),
    ("mesh_propagate/n32", True,
     lambda small: _bench_propagate(32, small)),
    ("mesh_propagate/n64", True,
     lambda small: _bench_propagate(64, small)),
    ("mesh_propagate_wdm/n32_p8", True,
     lambda small: _bench_propagate(32, small, width=8)),
    ("mesh_propagate_wdm/n64_p4", False,
     lambda small: _bench_propagate(64, small, width=4)),
    ("mesh_trace_hops/n64", True, lambda small: _bench_trace_hops(64, small)),
    ("svd_program_cache/n16", True,
     lambda small: _bench_svd_cache(16, small)),
    ("mesh_depth/clements", True,
     lambda small: _bench_mesh_depth("clements", 16, small)),
    ("mesh_depth/reck", True,
     lambda small: _bench_mesh_depth("reck", 16, small)),
    ("mesh_depth/bricks", True,
     lambda small: _bench_mesh_depth("bricks", 16, small)),
    ("noc_idle_run/mesh64", True, _bench_noc_idle),
    ("noc_step/mesh16_load08", True, _bench_noc_step),
    ("noc_trace_replay/mesh16_bursty", True, _bench_noc_trace),
    ("mvm_batch/fleet8_16x16", True, _bench_mvm_batch),
    ("sweep_small/2x2", True, _bench_sweep_2x2),
    ("sweep_small/full_grid", False, _bench_sweep_full),
    ("faults_smoke/stuck_mzi", True, _bench_fault_smoke),
    ("telemetry_overhead/2x2", True, _bench_telemetry_overhead),
    ("serve_saturation/poisson", True, _bench_serve_saturation),
    ("serve_cluster/replicas1", True,
     lambda small: _bench_serve_cluster(1, small)),
    ("serve_cluster/replicas4", True,
     lambda small: _bench_serve_cluster(4, small)),
]


def benchmark_names(small: bool = False) -> list[str]:
    return [name for name, in_small, _fn in BENCHMARKS
            if in_small or not small]


def run_suite(small: bool = False,
              only: str | None = None,
              progress=None) -> dict:
    """Execute the pinned suite; returns the artifact payload.

    ``small`` restricts to the CI subset (a strict subset of the full
    suite, so a full-suite baseline covers every small-suite benchmark).
    ``only`` keeps just the benchmarks whose name starts with the given
    prefix (used by the tests).  ``progress(name)`` is called before
    each benchmark runs.
    """
    benchmarks: dict[str, dict] = {}
    for name, in_small, fn in BENCHMARKS:
        if small and not in_small:
            continue
        if only and not name.startswith(only):
            continue
        if progress is not None:
            progress(name)
        benchmarks[name] = fn(small)
    return {
        "schema": SCHEMA_VERSION,
        "suite": "small" if small else "full",
        "rev": code_version()[:12],
        "benchmarks": benchmarks,
    }


def write_artifact(payload: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def default_artifact_path() -> str:
    return f"BENCH_{code_version()[:12]}.json"


def markdown_summary(payload: dict,
                     delta_rows: list[list] | None = None,
                     baseline_rev: str | None = None,
                     tolerance: float | None = None) -> str:
    """GitHub-flavored markdown report of a suite run.

    The CI perf job appends this to ``$GITHUB_STEP_SUMMARY`` so the
    trend against ``BENCH_baseline.json`` shows up on the workflow page
    without digging into artifacts.  ``delta_rows`` is
    :func:`compare_to_baseline` output; omit it when no baseline was
    available and only the current measurements are reported.
    """
    lines = [f"## Perf suite `{payload['suite']}` @ `{payload['rev']}`", ""]
    lines += ["| benchmark | wall (s) | per call (ms) | vs reference |",
              "|---|---:|---:|---:|"]
    for name, record in payload["benchmarks"].items():
        per_call = record.get("per_call_s")
        speedup = record.get("speedup_vs_reference")
        lines.append(
            f"| {name} | {record['wall_s']:.3f} "
            f"| {'-' if per_call is None else f'{per_call * 1e3:.3f}'} "
            f"| {'-' if speedup is None else f'{speedup:.2f}x'} |")
    lines.append("")
    quantile_rows = [
        (bench, series, q)
        for bench, record in payload["benchmarks"].items()
        for series, q in sorted(record.get("quantiles", {}).items())]
    if quantile_rows:
        lines += ["### Estimated latency quantiles", "",
                  "| benchmark | series | count | p50 | p95 | p99 |",
                  "|---|---|---:|---:|---:|---:|"]
        for bench, series, q in quantile_rows:
            lines.append(
                f"| {bench} | `{series}` | {q['count']} "
                f"| {q['p50']:g} | {q['p95']:g} | {q['p99']:g} |")
        lines.append("")
    if delta_rows is None:
        lines.append("_No baseline available; nothing to compare against._")
    else:
        title = f"### vs baseline @ `{baseline_rev or '?'}`"
        if tolerance is not None:
            title += f" (tolerance {tolerance:g}x)"
        lines += [title, "",
                  "| benchmark | current (s) | baseline (s) | ratio "
                  "| status |",
                  "|---|---:|---:|---:|---|"]
        for name, cur, ref, ratio, status in delta_rows:
            flag = "" if status in ("ok", "new (no baseline)") else " ⚠️"
            lines.append(f"| {name} | {cur} | {ref} | {ratio} "
                         f"| {status}{flag} |")
    lines.append("")
    return "\n".join(lines)


def compare_to_baseline(current: dict, baseline: dict,
                        tolerance: float = DEFAULT_TOLERANCE
                        ) -> tuple[list[list], list[str]]:
    """Delta report of ``current`` against ``baseline``.

    Returns ``(rows, failures)``: one row per benchmark present in both
    payloads with identical ``meta`` (benchmarks only in one side are
    reported but never failed), and a list of human-readable failures —
    a digest mismatch (simulation output changed: a correctness bug,
    failed strictly) or a timing ratio above ``tolerance``.  When both
    sides report ``per_call_s`` the ratio uses it (repetition-count
    independent, so a small-suite run compares cleanly against a
    full-suite baseline); otherwise it falls back to ``wall_s``.
    """
    rows: list[list] = []
    failures: list[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    for name, record in current.get("benchmarks", {}).items():
        base = base_benchmarks.get(name)
        if base is None:
            rows.append([name, f"{record['wall_s']:.4f}", "-", "-",
                         "new (no baseline)"])
            continue
        if base.get("meta") != record.get("meta"):
            rows.append([name, f"{record['wall_s']:.4f}", "-", "-",
                         "meta changed (not compared)"])
            continue
        if record.get("per_call_s") and base.get("per_call_s"):
            quantity, cur, ref = \
                "per-call", record["per_call_s"], base["per_call_s"]
        else:
            quantity, cur, ref = "wall", record["wall_s"], base["wall_s"]
        ratio = cur / ref if ref > 0 else float("inf")
        status = "ok"
        if record.get("digest") and base.get("digest") \
                and record["digest"] != base["digest"]:
            status = "DIGEST MISMATCH"
            failures.append(
                f"{name}: simulation output digest changed "
                f"({base['digest'][:12]} -> {record['digest'][:12]})")
        elif ratio > tolerance:
            status = f"SLOWER than {tolerance:g}x budget"
            failures.append(
                f"{name}: {quantity} {cur:.4f}s is {ratio:.2f}x the "
                f"baseline {ref:.4f}s (tolerance {tolerance:g}x)")
        rows.append([name, f"{cur:.4f}", f"{ref:.4f}",
                     f"{ratio:.2f}x", status])
    for name in base_benchmarks:
        if name not in current.get("benchmarks", {}):
            rows.append([name, "-", f"{base_benchmarks[name]['wall_s']:.4f}",
                        "-", "not run"])
    return rows, failures
