"""Evaluation metrics: speedup, energy reduction, EDP, geometric means."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping

from repro.core.system import WorkloadRun


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's aggregate for Figures 13-15."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("geomean of an empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def speedup(baseline: WorkloadRun, candidate: WorkloadRun) -> float:
    """Runtime ratio: how much faster ``candidate`` is."""
    return baseline.runtime_s / candidate.runtime_s


def energy_reduction(baseline: WorkloadRun, candidate: WorkloadRun) -> float:
    """Energy ratio: how much less energy ``candidate`` burns."""
    return baseline.energy.total / candidate.energy.total


def edp_reduction(baseline: WorkloadRun, candidate: WorkloadRun) -> float:
    """Energy-delay-product ratio (Figure 15)."""
    return baseline.edp / candidate.edp


def reductions_vs(runs: Mapping[str, WorkloadRun], baseline: str,
                  candidate: str = "flumen_a") -> dict[str, float]:
    """All three ratios of ``candidate`` against one baseline config."""
    base, cand = runs[baseline], runs[candidate]
    return {
        "speedup": speedup(base, cand),
        "energy": energy_reduction(base, cand),
        "edp": edp_reduction(base, cand),
    }


def percent_reduction(baseline: float, value: float) -> float:
    """'X% reduction' as the paper phrases Section 5.2 comparisons."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    return 100.0 * (1.0 - value / baseline)
