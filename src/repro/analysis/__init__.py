"""Metrics, sweeps, exports, and paper-style reporting."""

from repro.analysis.export import (
    runs_to_records,
    sweep_to_records,
    to_csv,
    to_json,
    write_records,
)
from repro.analysis.metrics import (
    edp_reduction,
    energy_reduction,
    geomean,
    percent_reduction,
    reductions_vs,
    speedup,
)
from repro.analysis.report import (
    ascii_chart,
    format_ratio,
    format_table,
)
from repro.analysis.sweep import SweepPoint, best_of, knee_of, sweep

__all__ = [
    "SweepPoint",
    "ascii_chart",
    "best_of",
    "edp_reduction",
    "energy_reduction",
    "format_ratio",
    "format_table",
    "geomean",
    "knee_of",
    "percent_reduction",
    "reductions_vs",
    "runs_to_records",
    "speedup",
    "sweep",
    "sweep_to_records",
    "to_csv",
    "to_json",
    "write_records",
]
