"""Metrics, sweeps, exports, and paper-style reporting."""

from repro.analysis.engine import (
    PointResult,
    PointSpec,
    ResultCache,
    RunTelemetry,
    SweepEngine,
    SweepRun,
    code_version,
    default_jobs,
    point_seed,
    register_task,
)
from repro.analysis.export import (
    runs_to_records,
    sweep_to_records,
    to_csv,
    to_json,
    write_records,
)
from repro.analysis.metrics import (
    edp_reduction,
    energy_reduction,
    geomean,
    percent_reduction,
    reductions_vs,
    speedup,
)
from repro.analysis.report import (
    ascii_chart,
    format_ratio,
    format_table,
)
from repro.analysis.sweep import (
    SweepPoint,
    best_of,
    knee_of,
    sweep,
    sweep_task,
)

__all__ = [
    "PointResult",
    "PointSpec",
    "ResultCache",
    "RunTelemetry",
    "SweepEngine",
    "SweepPoint",
    "SweepRun",
    "ascii_chart",
    "best_of",
    "code_version",
    "default_jobs",
    "edp_reduction",
    "energy_reduction",
    "format_ratio",
    "format_table",
    "geomean",
    "knee_of",
    "percent_reduction",
    "point_seed",
    "reductions_vs",
    "register_task",
    "runs_to_records",
    "speedup",
    "sweep",
    "sweep_task",
    "sweep_to_records",
    "to_csv",
    "to_json",
    "write_records",
]
