"""Export experiment results to CSV / JSON for downstream plotting."""

from __future__ import annotations

import csv
import io
import json
from collections.abc import Mapping, Sequence

from repro.core.system import WorkloadRun
from repro.noc.stats import SimulationResult


def runs_to_records(runs: Mapping[str, Mapping[str, WorkloadRun]]
                    ) -> list[dict]:
    """Flatten {workload: {configuration: run}} into record dicts."""
    records = []
    for workload, by_cfg in runs.items():
        for cfg, run in by_cfg.items():
            rec = {
                "workload": workload,
                "configuration": cfg,
                "runtime_s": run.runtime_s,
                "edp_js": run.edp,
                "offloaded_macs": run.offloaded_macs,
                "avg_packet_latency": run.avg_packet_latency,
            }
            for component, joules in run.energy.as_dict().items():
                rec[f"energy_{component}_j"] = joules
            rec["energy_total_j"] = run.energy.total
            records.append(rec)
    return records


def sweep_to_records(results: Sequence[SimulationResult]) -> list[dict]:
    """Flatten latency-sweep results (Figure 11 series)."""
    return [{
        "topology": r.topology,
        "pattern": r.pattern,
        "load": r.load,
        "avg_latency": r.avg_latency,
        "p99_latency": r.latency.p99,
        "saturated": r.saturated,
        "injected_packets": r.injected_packets,
    } for r in results]


def to_csv(records: Sequence[Mapping]) -> str:
    """Render records as CSV text (stable column order)."""
    if not records:
        return ""
    columns: list[str] = []
    for rec in records:
        for key in rec:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=columns)
    writer.writeheader()
    for rec in records:
        writer.writerow(rec)
    return out.getvalue()


def to_json(records: Sequence[Mapping], indent: int = 2) -> str:
    """Render records as JSON text."""
    return json.dumps(list(records), indent=indent, sort_keys=True)


def write_records(records: Sequence[Mapping], path: str) -> None:
    """Write records to ``path``; format chosen by extension."""
    if path.endswith(".csv"):
        text = to_csv(records)
    elif path.endswith(".json"):
        text = to_json(records)
    else:
        raise ValueError(f"unsupported extension on {path!r}; "
                         f"use .csv or .json")
    with open(path, "w") as handle:
        handle.write(text)
