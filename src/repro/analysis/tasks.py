"""Built-in sweep tasks for :mod:`repro.analysis.engine`.

A task is a module-level function ``fn(params, seed) -> metrics`` so it
can cross a :class:`~concurrent.futures.ProcessPoolExecutor` boundary by
name.  The registered set covers the repository's standing experiments:

``system_point``
    One (workload, configuration) cell of the Figures 13-15 system sweep.
``alg1_mix``
    The Section 3.4 mixed communication + computation run used by the
    tau/eta/zeta sensitivity scans.
``noc_latency``
    One synthetic-traffic network simulation (Figure 11 points and the
    network/fabric ablations).
``fault_point``
    One fault-injection campaign (DESIGN.md §12): inject a seeded fault
    mid-run, detect it, walk the degradation ladder, and report
    accuracy/overhead/recovery statistics (``python -m repro faults``).
``mesh_comparison``
    One mesh architecture's accuracy/depth/device/energy point
    (DESIGN.md §16): decomposition fidelity, drift and stuck-device
    degradation, recalibration residual, and the compute-energy window
    under that architecture's depth/device accounting.
``selftest``
    A cheap deterministic task exercised by the engine's own tests and
    the CI smoke job; ``params={"fail": true}`` raises on purpose to
    exercise failure isolation.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.engine import register_task
from repro.config import DeviceParams, SchedulerConfig, SystemConfig
from repro.core.pipelines import get_configuration
from repro.core.system import SystemModel, WorkloadRun
from repro.multicore.energy import EnergyBreakdown

#: Energy components serialized into system-sweep records.
ENERGY_COMPONENTS = ("core", "l1", "l2", "l3", "dram", "nop", "mzim")


def run_to_record(run: WorkloadRun) -> dict:
    """Serialize a :class:`WorkloadRun` to a JSON-safe metrics mapping."""
    return {
        "workload": run.workload,
        "configuration": run.configuration,
        "runtime_s": run.runtime_s,
        "core_cycles": run.core_cycles,
        "comm_cycles": run.comm_cycles,
        "mzim_cycles": run.mzim_cycles,
        "avg_packet_latency": run.avg_packet_latency,
        "offloaded_macs": run.offloaded_macs,
        "energy": {c: getattr(run.energy, c) for c in ENERGY_COMPONENTS},
        "energy_total_j": run.energy.total,
        "edp_js": run.edp,
    }


def run_from_record(record: dict) -> WorkloadRun:
    """Reconstruct a :class:`WorkloadRun` from :func:`run_to_record`.

    JSON round-trips doubles exactly, so the rebuilt run is numerically
    identical to the evaluated one — cached and fresh sweeps agree to
    the last bit.
    """
    energy = EnergyBreakdown(**record["energy"])
    return WorkloadRun(
        workload=record["workload"],
        configuration=record["configuration"],
        runtime_s=record["runtime_s"],
        energy=energy,
        core_cycles=record["core_cycles"],
        comm_cycles=record["comm_cycles"],
        mzim_cycles=record["mzim_cycles"],
        avg_packet_latency=record["avg_packet_latency"],
        offloaded_macs=record["offloaded_macs"])


def _parameter_tables() -> dict:
    """Cache-key context: the default system + device parameter tables."""
    return {
        "system": dataclasses.asdict(SystemConfig()),
        "devices": dataclasses.asdict(DeviceParams()),
    }


def _find_workload(name: str, shapes: str):
    # Builds only the named workload — constructing all five per sweep
    # point is measurable (paper-shape weight tensors are megabytes).
    from repro.workloads import make_workload
    return make_workload(name, shapes)


@register_task("system_point", context=_parameter_tables)
def system_point(params: dict, seed: int) -> dict:
    """Evaluate one (workload, configuration) pair of the system sweep.

    Params: ``workload`` (name), ``configuration`` (any registered
    pipeline name), ``shapes`` ("paper"/"small", default "paper"),
    ``traffic_seed`` (optional override of the engine-derived seed),
    ``vectorized`` (NoP backend selection: absent/None serves the
    struct-of-arrays twin, ``false`` pins the per-object oracle — the
    perf suite's equivalence leg uses this), ``mesh_architecture``
    (registry name; absent = the SystemConfig default, Clements).
    """
    # Resolve early so an unknown name fails with the registered list
    # before any simulation work happens.
    configuration = get_configuration(params["configuration"]).name
    workload = _find_workload(params["workload"],
                              params.get("shapes", "paper"))
    system = None
    if params.get("mesh_architecture"):
        system = SystemConfig().replace(
            mesh_architecture=str(params["mesh_architecture"]))
    model = SystemModel(system=system,
                        traffic_seed=int(params.get("traffic_seed", seed)),
                        vectorized=params.get("vectorized"))
    return run_to_record(model.run(workload, configuration))


@register_task("alg1_mix")
def alg1_mix(params: dict, seed: int) -> dict:
    """Section 3.4 mixed comm + compute run; service/latency metrics.

    Params: any of ``tau_cycles`` / ``eta`` / ``zeta`` (scheduler
    overrides), plus ``load``, ``cycles``, ``request_period``,
    ``traffic_seed``.
    """
    from repro.core.accelerator import plan_offload
    from repro.core.control_unit import ComputeRequest, MZIMControlUnit
    from repro.core.scheduler import FlumenScheduler
    from repro.noc.flumen_net import FlumenNetwork
    from repro.noc.traffic import TrafficGenerator

    overrides = {k: params[k] for k in ("tau_cycles", "eta", "zeta")
                 if k in params}
    if "tau_cycles" in overrides:
        overrides["tau_cycles"] = int(overrides["tau_cycles"])
    scheduler_cfg = SchedulerConfig(**overrides)
    system = SystemConfig().replace(scheduler=scheduler_cfg)
    load = float(params.get("load", 0.35))
    cycles = int(params.get("cycles", 4000))
    period = int(params.get("request_period", 120))
    traffic_seed = int(params.get("traffic_seed", seed))

    job = plan_offload(8, 8, 256, 8, 8)
    net = FlumenNetwork(16)
    control = MZIMControlUnit(net, system)
    scheduler = FlumenScheduler(control, system)
    traffic = TrafficGenerator(16, "uniform", load, seed=traffic_seed)
    submitted = 0
    for cycle in range(cycles):
        for packet in traffic.packets_for_cycle(net.cycle):
            net.offer_packet(packet)
        if cycle % period == 0:
            # Explicit per-run id (the default factory is a process-global
            # counter): keeps same-seed event logs byte-identical.
            control.compute_buffer.append(ComputeRequest(
                node=cycle % 16, plan=job, matrix_key="k",
                submit_cycle=cycle, ports_needed=4,
                duration_override=60, request_id=submitted))
            control.requests_received += 1
            submitted += 1
        scheduler.tick()
        net.step()
    return {
        "submitted": float(submitted),
        "serviced": float(scheduler.stats.completed),
        "service_rate": scheduler.stats.completed / max(submitted, 1),
        "avg_wait": scheduler.stats.average_wait,
        "packet_latency": net.latency.average,
        # Full JSON-ready snapshots ride along with the legacy keys.
        "scheduler": scheduler.stats.to_dict(),
        "latency": net.latency.to_dict(),
    }


@register_task("noc_latency")
def noc_latency(params: dict, seed: int) -> dict:
    """One synthetic-traffic network run; latency/throughput metrics.

    Params: ``topology`` (any :func:`make_topology` name, or "optbus" /
    "flumen"), ``pattern``, ``load``, ``nodes``, ``cycles``, ``warmup``,
    ``packet_size``, ``traffic_seed``, plus topology kwargs ``num_vcs``,
    ``buffer_depth`` (electrical) and ``reconfig_cycles``,
    ``arbitration``, ``pipelined_setup`` (Flumen).
    """
    from repro.noc.flumen_net import FlumenNetwork
    from repro.noc.network import Network
    from repro.noc.optbus import OptBusNetwork
    from repro.noc.topology import make_topology
    from repro.noc.traffic import TrafficGenerator

    topology = params.get("topology", "mesh")
    nodes = int(params.get("nodes", 16))
    cycles = int(params.get("cycles", 2000))
    warmup = int(params.get("warmup", 600))
    if topology == "flumen":
        kwargs = {k: params[k] for k in
                  ("reconfig_cycles", "arbitration", "pipelined_setup")
                  if k in params}
        net = FlumenNetwork(nodes, **kwargs)
    elif topology == "optbus":
        net = OptBusNetwork(nodes)
    else:
        kwargs = {k: int(params[k]) for k in ("num_vcs", "buffer_depth")
                  if k in params}
        net = Network(make_topology(topology, nodes), **kwargs)
    traffic = TrafficGenerator(
        nodes, params.get("pattern", "uniform"),
        float(params.get("load", 0.1)),
        packet_size=int(params.get("packet_size", 4)),
        seed=int(params.get("traffic_seed", seed)))
    net.run(traffic, cycles=cycles, warmup=warmup)
    measured = cycles - warmup
    return {
        "avg_latency": net.latency.average,
        "p99_latency": net.latency.p99,
        "throughput": net.latency.throughput(nodes, max(measured, 1)),
        # Full JSON-ready snapshots ride along with the legacy keys.
        "latency": net.latency.to_dict(),
        "utilization": net.utilization.to_dict(),
    }


@register_task("fault_point", context=_parameter_tables)
def fault_point(params: dict, seed: int) -> dict:
    """One fault campaign: inject, detect, degrade, recover, report.

    Params: ``fault`` (a registered fault kind, or "none" for the
    zero-fault control), ``magnitude``, ``runs``, ``cycles``, plus any
    :class:`~repro.faults.campaign.CampaignSpec` field (``load``,
    ``request_period``, ``probe_interval``, ...).  The engine-derived
    seed keeps campaign artifacts byte-identical across job counts.
    """
    from repro.faults.campaign import CampaignSpec, run_fault_campaign
    from repro.faults.ladder import BackoffPolicy

    fields = {f.name for f in dataclasses.fields(CampaignSpec)}
    kwargs = {k: v for k, v in params.items() if k in fields}
    if "backoff" in kwargs:
        kwargs["backoff"] = BackoffPolicy(**kwargs["backoff"])
    kwargs.setdefault("seed", seed)
    kwargs["seed"] = int(kwargs["seed"])
    for key in ("runs", "cycles", "ports", "nodes", "request_period",
                "probe_interval"):
        if key in kwargs:
            kwargs[key] = int(kwargs[key])
    return run_fault_campaign(CampaignSpec(**kwargs))


@register_task("mesh_comparison", context=_parameter_tables)
def mesh_comparison(params: dict, seed: int) -> dict:
    """One architecture's accuracy/depth/device/energy point.

    Params: ``architecture`` (a :mod:`repro.photonics.registry` name),
    ``ports`` (mesh size, default 8), ``vectors`` (MVMs per compute
    window, default 8), ``drift_sigma`` (phase-drift step, rad, default
    0.02), ``traffic_seed`` (optional override of the engine-derived
    seed).  The same seeded target unitary and fault doses hit every
    architecture, so rows differ only by arrangement — the 2507.22972
    complexity-vs-energy comparison as one grid axis.
    """
    import numpy as np

    from repro.analysis.engine import point_seed
    from repro.faults.injector import FaultyMesh
    from repro.photonics.calibration import (
        calibrate_by_decomposition,
        matrix_error,
    )
    from repro.photonics.clements import random_unitary
    from repro.photonics.compute_energy import MZIMComputeModel
    from repro.photonics.devices import BAR_THETA
    from repro.photonics.registry import make_mesh

    name = str(params["architecture"])
    arch = make_mesh(name)
    ports = int(params.get("ports", 8))
    vectors = int(params.get("vectors", 8))
    drift_sigma = float(params.get("drift_sigma", 0.02))
    base_seed = int(params.get("traffic_seed", seed))
    target = random_unitary(ports, np.random.default_rng(base_seed))
    mesh = arch.decompose(target)
    fields = np.eye(ports, dtype=complex)[:, 0]
    propagate_error = float(np.linalg.norm(
        arch.propagate(mesh, fields) - target @ fields))

    drifted = FaultyMesh(arch.decompose(target), architecture=arch)
    drifted.drift(drift_sigma,
                  np.random.default_rng(point_seed(base_seed, "drift")))
    drift_error = matrix_error(drifted.measure(), target)
    recal = calibrate_by_decomposition(drifted, target, iterations=2,
                                       architecture=name)

    stuck = FaultyMesh(arch.decompose(target), architecture=arch)
    stuck_index = stuck.num_mzis // 2
    stuck.stick(stuck_index, BAR_THETA)
    stuck_error = matrix_error(stuck.measure(), target)

    model = MZIMComputeModel(architecture=name)
    energy = model.matmul_energy(ports, vectors)
    return {
        "architecture": name,
        "ports": float(ports),
        "depth_bound": float(arch.depth(ports)),
        "measured_columns": float(mesh.num_columns),
        "device_count": float(arch.device_count(ports)),
        "program_mzi_count": float(arch.program_mzi_count(ports)),
        "passes": float(arch.passes(ports)),
        "svd_mzi_count": float(model.svd_mzi_count(ports)),
        "svd_mesh_columns": float(model.mesh_columns(ports)),
        "decomposition_error": matrix_error(arch.matrix(mesh), target),
        "propagate_error": propagate_error,
        "drift_error": drift_error,
        "recalibrated_error": recal.final_error,
        "stuck_error": stuck_error,
        "stuck_domain_size": float(len(stuck.stuck)),
        "compute_energy_j": energy.total,
        "energy_per_mac_j": energy.per_mac,
        "laser_power_per_vector_w": model.laser_power_per_vector_w(ports),
    }


@register_task("selftest")
def selftest(params: dict, seed: int) -> dict:
    """Deterministic toy task for engine tests and the CI smoke path."""
    if params.get("fail"):
        raise RuntimeError(params.get("message", "injected failure"))
    x = float(params.get("x", 0.0))
    return {"x": x, "square": x * x, "seed": float(seed)}
