"""Trace runner: one fully-instrumented workload run, export-ready.

Builds an active :class:`~repro.obs.Obs` bundle, threads it through a
:class:`~repro.core.system.SystemModel`, and runs one workload under one
configuration so every layer emits into the same tracer:

* **engine** — the run-level span with runtime/energy totals,
* **multicore** — per-phase cache walks on the stream-offset clock,
* **noc** — packet lifecycle spans, link-busy and arbiter counters,
* **core** — Algorithm 1 decisions (beta evaluations, grants/deferrals,
  port block/unblock, offload admission),
* **photonics** — fabric reprogramming events with phase-write counts
  (the scheduler drives a real :class:`FlumenFabric` mirror when traced).

Timestamps are simulation cycles (per-layer deterministic clocks), so a
``(workload, configuration, seed)`` triple always produces byte-identical
trace files — the CLI (``python -m repro trace``) and the determinism
tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pipelines import get_configuration
from repro.core.system import SystemModel, WorkloadRun
from repro.obs import LAYERS, Obs, chrome_trace_payload

#: Configurations that exercise all five layers in one run.
DEFAULT_CONFIGURATION = "flumen_a"


@dataclass
class TraceRun:
    """An instrumented run plus everything needed to export it."""

    workload: str
    configuration: str
    shapes: str
    traffic_seed: int
    obs: Obs
    run: WorkloadRun

    def other_data(self) -> dict:
        """Run identity recorded in the trace's ``otherData`` block."""
        return {
            "workload": self.workload,
            "configuration": self.configuration,
            "shapes": self.shapes,
            "traffic_seed": self.traffic_seed,
        }

    def payload(self) -> dict:
        """The Chrome trace-event JSON object for this run."""
        return chrome_trace_payload(self.obs.tracer,
                                    other_data=self.other_data())

    def metrics_snapshot(self) -> dict:
        """One JSONL-ready registry snapshot, tagged with run identity."""
        return {
            "workload": self.workload,
            "configuration": self.configuration,
            "shapes": self.shapes,
            "traffic_seed": self.traffic_seed,
            "metrics": self.obs.metrics.to_dict(),
        }

    def layer_coverage(self) -> dict[str, int]:
        """Event counts per model layer (all five should be nonzero)."""
        return self.obs.tracer.events_by_layer()

    def missing_layers(self) -> list[str]:
        coverage = self.layer_coverage()
        return [layer for layer in LAYERS if not coverage.get(layer)]


def trace_workload(workload_name: str,
                   configuration: str = DEFAULT_CONFIGURATION,
                   shapes: str = "paper",
                   traffic_seed: int = 17,
                   obs: Obs | None = None,
                   mesh_architecture: str | None = None) -> TraceRun:
    """Run one workload with full instrumentation attached.

    ``flumen_a`` (the default) is the only configuration whose execution
    path touches the scheduler and photonic fabric; baselines still
    produce engine/multicore/noc events.  Pass ``obs`` to substitute a
    different bundle (e.g. :meth:`Obs.telemetry` for a streaming
    event-log/snapshot run without the Chrome tracer), and
    ``mesh_architecture`` (a registry name) to trace the fabric mirror
    under a non-Clements arrangement.
    """
    from repro.analysis.tasks import _find_workload

    configuration = get_configuration(configuration).name
    workload = _find_workload(workload_name, shapes)
    obs = obs if obs is not None else Obs.active()
    system = None
    if mesh_architecture is not None:
        from repro.config import SystemConfig
        system = SystemConfig().replace(mesh_architecture=mesh_architecture)
    model = SystemModel(system=system, traffic_seed=traffic_seed, obs=obs)
    run = model.run(workload, configuration)
    return TraceRun(workload=workload_name, configuration=configuration,
                    shapes=shapes, traffic_seed=traffic_seed,
                    obs=obs, run=run)
