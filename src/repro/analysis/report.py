"""Paper-style text rendering: tables and ASCII charts for benches/examples."""

from __future__ import annotations

import sys
from collections.abc import Mapping, Sequence


def emit(text: str = "", end: str = "\n") -> None:
    """Write deliverable output (tables, summaries, artifacts) to stdout.

    The CLI separates *results* — stable stdout that tests and CI grep —
    from *diagnostics*, which go through :mod:`logging` to stderr.  This
    is the single sanctioned stdout sink, which lets ruff's T20 (no bare
    ``print``) cover all of ``src/``.  ``end=""`` suits pre-terminated
    payloads (Prometheus expositions, ANSI control sequences).
    """
    sys.stdout.write(text + end)


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + \
        [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def line(row):
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(cells[0]))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in cells[1:])
    return "\n".join(out)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def ascii_chart(series: Mapping[str, Sequence[tuple[float, float]]],
                width: int = 64, height: int = 16,
                title: str | None = None,
                log_y: bool = False) -> str:
    """Plot (x, y) series as an ASCII scatter/line chart.

    Each series gets a distinct marker; used by the examples and benches
    to visualize latency-load curves without plotting dependencies.
    """
    import math

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [math.log10(max(p[1], 1e-12)) if log_y else p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        mark = markers[idx % len(markers)]
        legend.append(f"{mark} {name}")
        for x, y in pts:
            yy = math.log10(max(y, 1e-12)) if log_y else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((yy - y_lo) / y_span * (height - 1))
            grid[row][col] = mark
    lines = []
    if title:
        lines.append(title)
    top = f"{10**y_hi:.3g}" if log_y else f"{y_hi:.3g}"
    bot = f"{10**y_lo:.3g}" if log_y else f"{y_lo:.3g}"
    lines.append(f"y: {bot} .. {top}" + ("  (log scale)" if log_y else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_lo:.3g} .. {x_hi:.3g}")
    lines.append("   ".join(legend))
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Render a comparison factor the way the paper does: '2.5x'."""
    return f"{value:.1f}x"
