"""Fault models and the fault registry (DESIGN.md §12).

Each fault class is a frozen dataclass describing one physical failure
mode of the Flumen fabric; the registry mirrors
:mod:`repro.noc.registry` so experiments (and tests) can plug in new
fault kinds without editing this module.  The built-in taxonomy follows
the reliability literature for MZI accelerators (Al-Qadasi et al.) and
chip-to-chip photonic interconnects:

``stuck_mzi``
    A phase shifter frozen at a fixed ``theta`` (bar state by default) —
    a dead heater or a shorted DAC channel.
``phase_drift``
    Slow Brownian walk of every phase shifter (thermal drift and
    crosstalk accumulating faster than the calibration loop).
``laser_degradation``
    Laser output power decay and/or dead WDM wavelengths.
``dead_link``
    A broken interposer waveguide between one (src, dst) endpoint pair.

Faults are *injected at a configured cycle* via a
:class:`FaultSchedule`, which is derived from a seed so campaigns are
deterministic — the same ``--seed`` always produces byte-identical
artifacts, and a schedule with no events leaves the simulation
untouched (the golden-numbers tests stay byte-identical).
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Iterator

import numpy as np

from repro.photonics.devices import BAR_THETA

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.injector import FaultDomain


class FaultModel:
    """Base class for injectable faults.

    Subclasses are frozen dataclasses registered under a ``kind`` name.
    ``inject`` applies the fault to a :class:`FaultDomain` once;
    continuous faults (``continuous = True``) additionally receive
    ``step`` calls every ``interval_cycles`` after injection.
    """

    kind: ClassVar[str] = "?"
    #: Continuous faults keep evolving after injection (e.g. drift).
    continuous: ClassVar[bool] = False
    #: Cycle period between ``step`` calls for continuous faults.
    interval_cycles: ClassVar[int] = 0

    def inject(self, domain: FaultDomain, rng: np.random.Generator,
               cycle: int) -> None:
        raise NotImplementedError

    def step(self, domain: FaultDomain, rng: np.random.Generator,
             cycle: int) -> None:
        """Advance a continuous fault by one step (no-op by default)."""

    def with_magnitude(self, magnitude: float) -> "FaultModel":
        """A copy scaled to a campaign's severity knob (default: self)."""
        return self

    @classmethod
    def seeded(cls, rng: np.random.Generator, *, ports: int, nodes: int,
               magnitude: float = 1.0) -> "FaultModel":
        """Draw a concrete fault instance for a seeded schedule."""
        return cls().with_magnitude(magnitude)  # type: ignore[call-arg]

    def params(self) -> dict:
        """JSON-safe parameter mapping (for traces and records)."""
        return {k: (v if isinstance(v, (int, str, bool)) else float(v))
                for k, v in dataclasses.asdict(self).items()}


# -- registry (mirrors repro.noc.registry) -------------------------------

_FAULTS: dict[str, type[FaultModel]] = {}


def register_fault(kind: str, cls: type[FaultModel] | None = None, *,
                   replace: bool = False):
    """Register a fault class under ``kind``; usable as a decorator.

    Registering an already-taken kind raises unless ``replace=True`` —
    silent shadowing would make campaign specs ambiguous.
    """
    def apply(target: type[FaultModel]) -> type[FaultModel]:
        if not replace and kind in _FAULTS:
            raise ValueError(
                f"fault kind {kind!r} already registered "
                f"({_FAULTS[kind].__name__}); pass replace=True to shadow")
        target.kind = kind
        _FAULTS[kind] = target
        return target

    if cls is None:
        return apply
    return apply(cls)


def unregister_fault(kind: str) -> type[FaultModel]:
    """Remove and return a registered fault class."""
    try:
        return _FAULTS.pop(kind)
    except KeyError:
        raise ValueError(
            f"fault kind {kind!r} is not registered; "
            f"registered: {registered_faults()}") from None


def fault_class(kind: str) -> type[FaultModel]:
    """Look up a fault class; unknown kinds list the live registry."""
    try:
        return _FAULTS[kind]
    except KeyError:
        raise ValueError(
            f"unknown fault kind {kind!r}; "
            f"registered: {registered_faults()}") from None


def make_fault(kind: str, **params: object) -> FaultModel:
    """Instantiate a registered fault with explicit parameters."""
    return fault_class(kind)(**params)  # type: ignore[call-arg]


def registered_faults() -> tuple[str, ...]:
    """Registered fault kinds, sorted for stable messages/artifacts."""
    return tuple(sorted(_FAULTS))


@contextlib.contextmanager
def temporary_fault(kind: str,
                    cls: type[FaultModel]) -> Iterator[type[FaultModel]]:
    """Register a fault for the duration of a ``with`` block (tests)."""
    previous = _FAULTS.get(kind)
    register_fault(kind, cls, replace=True)
    try:
        yield cls
    finally:
        if previous is None:
            _FAULTS.pop(kind, None)
        else:
            _FAULTS[kind] = previous


# -- built-in fault taxonomy ---------------------------------------------

@register_fault("stuck_mzi")
@dataclass(frozen=True)
class StuckMZI(FaultModel):
    """One or more MZIs frozen at a fixed ``theta`` (bar by default).

    ``count`` neighbouring devices stick together (a shared heater
    driver failing takes out its whole fanout); magnitude scales the
    count.  Calibration cannot move a stuck phase, so recovery means
    shrinking the partition onto fault-free columns.
    """

    mzi_index: int = 0
    theta: float = BAR_THETA
    count: int = 1

    def inject(self, domain: FaultDomain, rng: np.random.Generator,
               cycle: int) -> None:
        mesh = domain.mesh
        if mesh is None:
            return
        for k in range(self.count):
            mesh.stick((self.mzi_index + k) % mesh.num_mzis, self.theta)

    def with_magnitude(self, magnitude: float) -> "StuckMZI":
        return dataclasses.replace(
            self, count=max(1, int(round(self.count * magnitude))))

    @classmethod
    def seeded(cls, rng: np.random.Generator, *, ports: int, nodes: int,
               magnitude: float = 1.0) -> "StuckMZI":
        num_mzis = max(1, ports * (ports - 1) // 2)
        return cls(mzi_index=int(rng.integers(num_mzis))) \
            .with_magnitude(magnitude)


@register_fault("phase_drift")
@dataclass(frozen=True)
class PhaseDrift(FaultModel):
    """Brownian phase drift: every shifter random-walks in theta/phi.

    ``sigma_rad`` is the per-step RMS increment, applied every
    ``interval_cycles`` network cycles; magnitude scales ``sigma_rad``.
    Detected as growing transfer-matrix error; recovery is
    re-calibration (the offsets are movable, unlike a stuck device).
    """

    sigma_rad: float = 0.02
    continuous: ClassVar[bool] = True
    interval_cycles: ClassVar[int] = 32

    def inject(self, domain: FaultDomain, rng: np.random.Generator,
               cycle: int) -> None:
        self.step(domain, rng, cycle)

    def step(self, domain: FaultDomain, rng: np.random.Generator,
             cycle: int) -> None:
        if domain.mesh is not None:
            domain.mesh.drift(self.sigma_rad, rng)

    def with_magnitude(self, magnitude: float) -> "PhaseDrift":
        return dataclasses.replace(
            self, sigma_rad=self.sigma_rad * magnitude)


@register_fault("laser_degradation")
@dataclass(frozen=True)
class LaserDegradation(FaultModel):
    """Laser power decay and dead WDM wavelengths.

    ``power_fraction`` multiplies the domain's remaining laser power;
    magnitude ``m`` maps to ``10**-m`` (decades of attenuation), so
    ``m=1`` is a 10 dB hit the detector ENOB largely survives and
    ``m=3`` is unrecoverable photonically (electrical fallback).
    """

    power_fraction: float = 0.1
    dead_wavelengths: int = 0

    def inject(self, domain: FaultDomain, rng: np.random.Generator,
               cycle: int) -> None:
        domain.laser_power_fraction = max(
            1e-9, domain.laser_power_fraction * self.power_fraction)
        domain.dead_wavelengths += self.dead_wavelengths

    def with_magnitude(self, magnitude: float) -> "LaserDegradation":
        return dataclasses.replace(
            self, power_fraction=10.0 ** (-magnitude))


@register_fault("dead_link")
@dataclass(frozen=True)
class DeadLink(FaultModel):
    """A broken interposer path between one (src, dst) endpoint pair.

    Until the ladder programs a detour (``reroute_pair`` on the
    network), the pair's transfer probe reads as fully failed; after
    rerouting, circuits for the pair pay ``detour_cycles`` extra setup.
    Magnitude scales the detour penalty.
    """

    src: int = 0
    dst: int = 1
    detour_cycles: int = 6

    def inject(self, domain: FaultDomain, rng: np.random.Generator,
               cycle: int) -> None:
        if self.src != self.dst:
            domain.dead_pairs.add((self.src, self.dst))
            domain.detour_cycles[(self.src, self.dst)] = self.detour_cycles

    def with_magnitude(self, magnitude: float) -> "DeadLink":
        return dataclasses.replace(
            self,
            detour_cycles=max(1, int(round(self.detour_cycles * magnitude))))

    @classmethod
    def seeded(cls, rng: np.random.Generator, *, ports: int, nodes: int,
               magnitude: float = 1.0) -> "DeadLink":
        src = int(rng.integers(nodes))
        dst = int((src + 1 + rng.integers(nodes - 1)) % nodes)
        return cls(src=src, dst=dst).with_magnitude(magnitude)


# -- seeded schedules -----------------------------------------------------

@dataclass(frozen=True)
class FaultEvent:
    """One scheduled injection: ``fault`` fires at ``cycle``."""

    cycle: int
    fault: FaultModel


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, deterministic set of fault injections.

    Empty schedules are the default everywhere: with no events the
    simulation path is untouched, which is what keeps the golden-numbers
    tests byte-identical when faults are compiled in but not enabled.
    """

    events: tuple[FaultEvent, ...] = ()

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    @classmethod
    def seeded(cls, kinds, seed: int, *, window_cycles: int,
               ports: int = 8, nodes: int = 16, magnitude: float = 1.0,
               count_per_kind: int = 1) -> "FaultSchedule":
        """Draw injection cycles and fault parameters from ``seed``.

        Injections land in the first half of the run (after a warm-up
        eighth) so detection and the full recovery ladder have room to
        play out inside ``window_cycles``.
        """
        if window_cycles < 8:
            raise ValueError(
                f"window_cycles must be >= 8, got {window_cycles}")
        rng = np.random.default_rng(seed)
        lo = window_cycles // 8
        hi = max(window_cycles // 2, lo + 1)
        events = []
        for kind in kinds:
            klass = fault_class(kind)
            for _ in range(count_per_kind):
                cycle = int(rng.integers(lo, hi))
                fault = klass.seeded(rng, ports=ports, nodes=nodes,
                                     magnitude=magnitude)
                events.append(FaultEvent(cycle=cycle, fault=fault))
        events.sort(key=lambda e: (e.cycle, e.fault.kind))
        return cls(events=tuple(events))
