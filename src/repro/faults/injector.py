"""Runtime fault injection into a live fabric + network run.

:class:`FaultyMesh` extends the calibration module's
:class:`~repro.photonics.calibration.PhysicalMesh` with the two physical
misbehaviours the fault models need — phases that are *pinned* (stuck-at)
regardless of what the controller programs, and hidden offsets that
*drift* over time.  Detection code still only sees :meth:`measure`, the
basis-injection transfer matrix, exactly like the calibration loop.

:class:`FaultDomain` is the mutable blast radius shared by the injector,
the health monitor and the degradation ladder: the mesh under test, the
network, remaining laser power, and the dead/rerouted link sets.

:class:`FaultInjector` replays a seeded
:class:`~repro.faults.models.FaultSchedule` during a run: call
:meth:`tick` once per cycle; scheduled faults fire at their cycle and
continuous faults (drift) keep stepping afterwards.  Injections are
emitted as ``photonics``-layer trace instants and a per-kind counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.faults.models import FaultEvent, FaultModel, FaultSchedule
from repro.obs import NULL_OBS, Obs
from repro.photonics.calibration import PhaseOffsets, PhysicalMesh

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.faults.ladder import DegradationLadder
    from repro.noc.flumen_net import FlumenNetwork
    from repro.photonics.clements import MZIMesh


class FaultyMesh(PhysicalMesh):
    """A fabricated mesh whose devices can stick or drift.

    ``offsets`` defaults to none (a perfectly calibrated part), so a
    fresh :class:`FaultyMesh` measures exactly its programmed matrix
    until a fault is injected.  ``architecture`` (a registry name or
    :class:`~repro.photonics.registry.MeshArchitecture`) widens stuck
    faults to the physical device's full fault domain — on recirculating
    meshes one dead heater pins every virtual MZI it serves.
    """

    def __init__(self, ideal: MZIMesh,
                 offsets: PhaseOffsets | None = None,
                 architecture=None) -> None:
        super().__init__(ideal, offsets or PhaseOffsets.none(ideal.num_mzis))
        if architecture is not None:
            from repro.photonics.registry import make_mesh
            architecture = make_mesh(architecture)
        self.architecture = architecture
        #: MZI index -> pinned theta; wins over programming and offsets.
        self.stuck: dict[int, float] = {}
        self.drift_steps = 0

    def stick(self, index: int, theta: float) -> None:
        """Pin one physical device's realized theta (dead heater).

        With an ``architecture`` set, every virtual MZI sharing the
        device sticks too.
        """
        if not 0 <= index < self.num_mzis:
            raise ValueError(
                f"MZI index {index} out of range [0, {self.num_mzis})")
        if self.architecture is None:
            domain: tuple[int, ...] = (index,)
        else:
            domain = self.architecture.fault_domain(self._structure, index)
        for i in domain:
            self.stuck[i] = float(theta)

    def drift(self, sigma_rad: float, rng: np.random.Generator) -> None:
        """One Brownian step: every hidden offset random-walks."""
        self._offsets.theta += rng.normal(0.0, sigma_rad, self.num_mzis)
        self._offsets.phi += rng.normal(0.0, sigma_rad, self.num_mzis)
        self.drift_steps += 1

    def _realized(self):
        mesh = super()._realized()
        for index, theta in self.stuck.items():
            mzi = mesh.mzis[index]
            mesh.mzis[index] = mzi.with_phases(theta, mzi.phi)
        return mesh


@dataclass
class FaultDomain:
    """Mutable fault state shared by injector, monitor, and ladder."""

    mesh: FaultyMesh | None = None
    network: FlumenNetwork | None = None
    ladder: DegradationLadder | None = None
    #: Remaining laser output as a fraction of nominal.
    laser_power_fraction: float = 1.0
    dead_wavelengths: int = 0
    #: (src, dst) endpoint pairs whose interposer path is broken.
    dead_pairs: set[tuple[int, int]] = field(default_factory=set)
    #: Pairs the ladder has already detoured around.
    rerouted_pairs: set[tuple[int, int]] = field(default_factory=set)
    #: Extra setup cycles the detour will cost, per dead pair.
    detour_cycles: dict[tuple[int, int], int] = field(default_factory=dict)

    def unrouted_pairs(self) -> list[tuple[int, int]]:
        """Dead pairs with no detour programmed yet, in stable order."""
        return sorted(self.dead_pairs - self.rerouted_pairs)

    def link_error(self) -> float:
        """Transfer-probe error contribution of un-detoured dead links.

        A basis probe down a severed path measures zero power — a full-
        scale error — so any unrouted dead pair reads as 1.0.
        """
        return 1.0 if self.dead_pairs - self.rerouted_pairs else 0.0


class FaultInjector:
    """Replays a :class:`FaultSchedule` into a :class:`FaultDomain`."""

    def __init__(self, schedule: FaultSchedule, domain: FaultDomain,
                 seed: int = 0, obs: Obs = NULL_OBS) -> None:
        self.domain = domain
        self.rng = np.random.default_rng(seed)
        self._events = sorted(schedule,
                              key=lambda e: (e.cycle, e.fault.kind))
        self._index = 0
        self.injected: list[FaultEvent] = []
        self._continuous: list[FaultModel] = []
        self.obs = obs
        self._tracer = obs.tracer
        self._event_log = obs.events

    @property
    def pending(self) -> int:
        """Scheduled injections not yet fired."""
        return len(self._events) - self._index

    def next_due_cycle(self, cycle: int) -> int | None:
        """First cycle >= ``cycle`` at which :meth:`tick` has work.

        ``None`` means the injector is permanently idle (no scheduled
        events left, no continuous faults stepping).  Idle fast-forward
        loops (the serve daemon's vectorized path) use this to jump
        over stretches where skipping :meth:`tick` is observably
        equivalent to calling it.
        """
        due: int | None = None
        if self._index < len(self._events):
            due = max(cycle, self._events[self._index].cycle)
        for fault in self._continuous:
            interval = fault.interval_cycles
            if not interval:
                continue
            step_due = cycle if cycle % interval == 0 \
                else (cycle // interval + 1) * interval
            due = step_due if due is None else min(due, step_due)
        return due

    def tick(self, cycle: int) -> None:
        """Fire due injections and step continuous faults."""
        while self._index < len(self._events) \
                and self._events[self._index].cycle <= cycle:
            event = self._events[self._index]
            self._index += 1
            event.fault.inject(self.domain, self.rng, cycle)
            self.injected.append(event)
            if event.fault.continuous:
                self._continuous.append(event.fault)
            self.obs.metrics.counter(
                "photonics.faults_injected", kind=event.fault.kind).inc()
            if self._event_log.enabled:
                self._event_log.emit(
                    "fault_activation", cycle, kind=event.fault.kind,
                    scheduled_cycle=event.cycle,
                    continuous=event.fault.continuous,
                    **event.fault.params())
            if self._tracer.enabled:
                self._tracer.instant(
                    "photonics", "faults", f"inject_{event.fault.kind}",
                    cycle, **event.fault.params())
        for fault in self._continuous:
            if fault.interval_cycles and cycle % fault.interval_cycles == 0:
                fault.step(self.domain, self.rng, cycle)
