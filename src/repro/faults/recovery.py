"""Shared fabric-recovery controller: probe, detect, walk the ladder.

Both long-lived consumers of the fault subsystem — the batch campaign
runner (:mod:`repro.faults.campaign`) and the serving daemon
(:mod:`repro.serve.daemon`) — need the same reliability core: a
:class:`~repro.faults.injector.FaultyMesh` programmed with a target
unitary, the mutable :class:`~repro.faults.injector.FaultDomain`, a
:class:`~repro.core.control_unit.HealthMonitor` whose probes read that
domain, the :class:`~repro.faults.ladder.DegradationLadder`, and the
rung *actions* (recalibrate / shrink / reroute) that turn ladder state
into fabric mutations.  :class:`FabricRecovery` owns exactly that
bundle so the two callers cannot drift apart.

Determinism contract: the controller consumes the caller's RNG once
(for the target unitary) at construction, and each SHRINK re-placement
derives its own generator from ``point_seed(seed, f"shrink/{cycle}")``
— identical to the pre-extraction campaign behavior, so campaign
artifacts stay byte-identical across this refactor.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.engine import point_seed
from repro.config import DeviceParams
from repro.core.control_unit import HealthMonitor
from repro.faults.injector import FaultDomain, FaultyMesh
from repro.faults.ladder import BackoffPolicy, DegradationLadder, Rung
from repro.obs import NULL_OBS, Obs
from repro.photonics.calibration import (
    calibrate_by_decomposition,
    matrix_error,
)
from repro.photonics.clements import decompose, random_unitary

#: Received optical power at nominal laser output (the AnalogMVM default).
NOMINAL_RECEIVED_POWER_W = 50e-6


class FabricRecovery:
    """Reliability core for one live fabric: domain, monitor, ladder,
    and the rung actions that mutate the fabric.

    The caller builds the network/scheduler around this controller,
    binds the network with :meth:`bind_network`, and calls
    :meth:`service` once per simulated cycle after the injector tick.
    """

    def __init__(self, *, ports: int, nodes: int, seed: int,
                 rng: np.random.Generator,
                 backoff: BackoffPolicy | None = None,
                 probe_interval: int = 48,
                 error_threshold: float = 0.05,
                 min_effective_bits: float = 4.0,
                 mesh_architecture: str = "clements",
                 devices: DeviceParams | None = None,
                 obs: Obs = NULL_OBS,
                 probe_memo: bool = False) -> None:
        self.total_ports = ports
        #: Current partition width; SHRINK lowers it.
        self.ports = ports
        self.nodes = nodes
        self.seed = seed
        self.obs = obs
        self.devices = devices if devices is not None else DeviceParams()
        self.mesh_architecture = mesh_architecture
        # Clements stays on the direct path (bit-identical to the golden
        # pins); alternatives resolve through the registry, and stuck
        # faults widen to the architecture's physical fault domains.
        if mesh_architecture == "clements":
            self._decompose = decompose
            self._fault_arch = None
        else:
            from repro.photonics.registry import make_mesh
            self._fault_arch = make_mesh(mesh_architecture)
            self._decompose = self._fault_arch.decompose
        self.target = random_unitary(ports, rng)
        self.domain = FaultDomain(
            mesh=FaultyMesh(self._decompose(self.target),
                            architecture=self._fault_arch))
        self.ladder = DegradationLadder(
            fabric_ports=ports,
            policy=backoff if backoff is not None else BackoffPolicy(),
            obs=obs)
        self.domain.ladder = self.ladder
        self.monitor = HealthMonitor(
            mesh_probe=self.mesh_probe,
            link_probe=self.domain.link_error,
            power_probe=self.received_power,
            error_threshold=error_threshold,
            min_effective_bits=min_effective_bits,
            interval_cycles=probe_interval,
            obs=obs)
        self.network = None
        self.recalibrations = 0
        self.detected_cycle: int | None = None
        self.error_peak = 0.0
        #: Opt-in single-slot probe memo: the serving daemon probes a
        #: healthy, unchanged mesh every ``probe_interval`` cycles, and
        #: :func:`matrix_error` is a pure function of the mesh content
        #: and the target, so re-deriving the realized transfer matrix
        #: is wasted work until something actually mutates.
        self.probe_memo = bool(probe_memo)
        self._probe_cache: tuple[tuple, float] | None = None
        self.probe_memo_hits = 0

    def bind_network(self, network) -> None:
        """Attach the interposer network so dead-link faults and the
        REROUTE rung can reach it."""
        self.network = network
        self.domain.network = network

    # -- probes ------------------------------------------------------------

    def mesh_probe(self) -> float:
        """Basis-vector transfer error of the live mesh vs. its target.

        With ``probe_memo`` enabled, the error is served from a
        content-keyed single-slot cache: the key covers everything
        :meth:`~repro.photonics.calibration.PhysicalMesh.measure`
        depends on (programmed phases, hidden offsets, stuck devices,
        and the target), so any mutation — drift, recalibration,
        shrink, a stuck heater — misses and re-measures.  A hit still
        counts a measurement, keeping the mesh's probe accounting
        byte-identical to the uncached path.
        """
        mesh = self.domain.mesh
        if not self.probe_memo:
            return matrix_error(mesh.measure(), self.target)
        key = (id(mesh),
               mesh.programmed.tobytes(),
               mesh._offsets.theta.tobytes(),
               mesh._offsets.phi.tobytes(),
               tuple(sorted(getattr(mesh, "stuck", {}).items())),
               self.target.tobytes())
        cached = self._probe_cache
        if cached is not None and cached[0] == key:
            mesh.measurements += 1
            self.probe_memo_hits += 1
            return cached[1]
        error = matrix_error(mesh.measure(), self.target)
        self._probe_cache = (key, error)
        return error

    def received_power(self) -> float:
        """Received optical power given laser health and partition size.

        Shrinking the partition removes MZI columns from the light path,
        so each retired column claws back one column's insertion loss —
        the physical reason the SHRINK rung helps against laser
        degradation.
        """
        gain_db = self.devices.mzi.insertion_loss_db \
            * (self.total_ports - self.ports)
        return NOMINAL_RECEIVED_POWER_W \
            * self.domain.laser_power_fraction * 10.0 ** (gain_db / 10.0)

    # -- ladder rung actions ----------------------------------------------

    def _act_recalibrate(self) -> None:
        calibrate_by_decomposition(
            self.domain.mesh, self.target, iterations=1,
            architecture=self.mesh_architecture)
        self.recalibrations += 1

    def _act_shrink(self, cycle: int) -> None:
        """Re-place the compute circuit on a smaller, fault-free block.

        The shrunken partition sits on fresh columns, so stuck devices
        in the retired region stop mattering; continuous drift keeps
        acting on the new mesh through the injector's domain reference.
        """
        new_ports = self.ladder.partition_ports_cap
        if new_ports >= self.ports:
            return
        self.ports = new_ports
        sub_rng = np.random.default_rng(
            point_seed(self.seed, f"shrink/{cycle}"))
        self.target = random_unitary(new_ports, sub_rng)
        self.domain.mesh = FaultyMesh(self._decompose(self.target),
                                      architecture=self._fault_arch)
        self.recalibrations += 1  # the new block is programmed once

    def _act_reroute(self) -> None:
        for src, dst in self.domain.unrouted_pairs():
            penalty = self.domain.detour_cycles.get((src, dst), 6)
            self.network.reroute_pair(src, dst, penalty)
            self.domain.rerouted_pairs.add((src, dst))
            port = dst * self.total_ports // self.nodes
            self.ladder.mark_dead_port(port)

    def run_ladder_action(self, cycle: int) -> None:
        """Perform the current rung's action and report the re-probe."""
        self.ladder.attempt_started(cycle)
        rung = self.ladder.rung
        if rung is Rung.RECALIBRATE:
            self._act_recalibrate()
        elif rung is Rung.SHRINK:
            self._act_shrink(cycle)
        elif rung is Rung.REROUTE:
            self._act_reroute()
        sample = self.monitor.probe(cycle)
        self.ladder.attempt_result(cycle, bool(sample["healthy"]),
                                   error=float(sample["error"]))

    # -- per-cycle service -------------------------------------------------

    def service(self, cycle: int) -> dict | None:
        """One reliability step: throttled probe, detection, due action.

        Returns the monitor sample when a probe fired this cycle (the
        campaign uses it for error-peak accounting), else ``None``.
        """
        sample = self.monitor.sample(cycle)
        if sample is not None:
            self.error_peak = max(self.error_peak,
                                  float(sample["error"]))
            if not sample["healthy"] and self.ladder.healthy:
                if self.ladder.detect(cycle, error=sample["error"]) \
                        and self.detected_cycle is None:
                    self.detected_cycle = cycle
        if self.ladder.due(cycle):
            self.run_ladder_action(cycle)
        return sample
