"""Fault injection and graceful degradation (DESIGN.md §12).

The subsystem has four parts, mirroring how a real Flumen controller
would be hardened:

:mod:`repro.faults.models`
    Frozen fault dataclasses (stuck MZI, phase drift, laser degradation,
    dead interposer link) behind a registry shaped like
    :mod:`repro.noc.registry`, plus deterministic seeded fault schedules.
:mod:`repro.faults.injector`
    Applies scheduled faults to a live run: a :class:`FaultyMesh` whose
    realized phases can be pinned or drifted, and a :class:`FaultDomain`
    holding the mutable fault state shared with detection/recovery.
:mod:`repro.faults.ladder`
    The degradation ladder state machine — re-calibrate with bounded
    retries and exponential backoff, shrink the compute partition,
    reroute around dead paths, electrical fallback — with every
    transition emitted through :mod:`repro.obs`.
:mod:`repro.faults.campaign`
    Campaign runner on the sweep engine: inject, detect, recover,
    and report ENOB loss, runtime/energy overhead and recovery
    statistics per fault class (``python -m repro faults``).
"""

from repro.faults.injector import FaultDomain, FaultInjector, FaultyMesh
from repro.faults.ladder import BackoffPolicy, DegradationLadder, Rung
from repro.faults.models import (
    DeadLink,
    FaultEvent,
    FaultModel,
    FaultSchedule,
    LaserDegradation,
    PhaseDrift,
    StuckMZI,
    fault_class,
    make_fault,
    register_fault,
    registered_faults,
    temporary_fault,
    unregister_fault,
)

__all__ = [
    "BackoffPolicy",
    "DeadLink",
    "DegradationLadder",
    "FaultDomain",
    "FaultEvent",
    "FaultInjector",
    "FaultModel",
    "FaultSchedule",
    "FaultyMesh",
    "LaserDegradation",
    "PhaseDrift",
    "Rung",
    "StuckMZI",
    "fault_class",
    "make_fault",
    "register_fault",
    "registered_faults",
    "temporary_fault",
    "unregister_fault",
]
