"""The graceful-degradation ladder (DESIGN.md §12).

When the health monitor flags the fabric, the controller walks a fixed
escalation sequence, retrying each rung with exponential backoff before
climbing to the next:

``HEALTHY -> RECALIBRATE -> SHRINK -> REROUTE -> ELECTRICAL``

* **RECALIBRATE** — re-run in-situ self-configuration around the fault
  (:func:`repro.photonics.calibration.calibrate_by_decomposition`);
  fixes movable phase errors such as drift.
* **SHRINK** — halve the compute partition's port cap, placing the SVD
  circuit on fault-free columns; fixes localized stuck devices and buys
  insertion-loss headroom against laser degradation.
* **REROUTE** — program detours around dead interposer paths
  (:meth:`repro.noc.flumen_net.FlumenNetwork.reroute_pair`) and retire
  the affected fabric port from partition placement.
* **ELECTRICAL** — terminal fallback: compute requests are serviced on
  the electrical core path (:mod:`repro.core.scheduler`), never the
  photonic fabric.  Accuracy is restored at digital precision, at the
  electrical path's runtime/energy cost.

This module is only the *state machine* and its bookkeeping; the rung
actions themselves are performed by the caller (the campaign runner or
a controller loop), which reports back via :meth:`attempt_result`.
Every transition is emitted through :mod:`repro.obs` as a ``core``-layer
instant plus metrics, so campaigns are traceable in Perfetto.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.obs import NULL_OBS, Obs


class Rung(enum.IntEnum):
    """Ladder rungs, in escalation order."""

    HEALTHY = 0
    RECALIBRATE = 1
    SHRINK = 2
    REROUTE = 3
    ELECTRICAL = 4


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded-retry exponential backoff for one ladder rung.

    Attempt ``a`` waits ``base_cycles * factor**a`` cycles (capped at
    ``max_backoff_cycles``); after ``max_retries`` failed attempts the
    ladder escalates to the next rung.
    """

    base_cycles: int = 32
    factor: float = 2.0
    max_retries: int = 3
    max_backoff_cycles: int = 4096

    def __post_init__(self) -> None:
        if self.base_cycles < 1:
            raise ValueError(
                f"base_cycles must be >= 1, got {self.base_cycles}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_backoff_cycles < self.base_cycles:
            raise ValueError(
                f"max_backoff_cycles ({self.max_backoff_cycles}) must be "
                f">= base_cycles ({self.base_cycles})")

    def delay_cycles(self, attempt: int) -> int:
        """Backoff delay before attempt number ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(int(round(self.base_cycles * self.factor ** attempt)),
                   self.max_backoff_cycles)

    def schedule(self) -> tuple[int, ...]:
        """All per-attempt delays for one rung, in order."""
        return tuple(self.delay_cycles(a)
                     for a in range(self.max_retries + 1))


@dataclass(frozen=True)
class LadderTransition:
    """One recorded rung change."""

    cycle: int
    src: str
    dst: str
    reason: str

    def to_dict(self) -> dict:
        return {"cycle": self.cycle, "src": self.src, "dst": self.dst,
                "reason": self.reason}


@dataclass
class LadderStats:
    """Counters the campaign report aggregates per fault class."""

    detections: int = 0
    attempts: int = 0
    recoveries: int = 0
    escalations: int = 0
    backoff_cycles: int = 0
    rung_entries: dict[str, int] = field(default_factory=dict)
    recovered_rungs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "detections": self.detections,
            "attempts": self.attempts,
            "recoveries": self.recoveries,
            "escalations": self.escalations,
            "backoff_cycles": self.backoff_cycles,
            "rung_entries": dict(self.rung_entries),
            "recovered_rungs": list(self.recovered_rungs),
        }


class DegradationLadder:
    """State machine walking the degradation rungs with bounded retries.

    Protocol (driven by the controller/campaign loop):

    1. an unhealthy probe calls :meth:`detect` — the ladder arms at
       ``RECALIBRATE`` and schedules the first attempt after one backoff;
    2. when :meth:`due` turns true the caller performs the current
       rung's action, brackets it with :meth:`attempt_started` /
       :meth:`attempt_result`;
    3. a healthy result recovers to ``HEALTHY`` (keeping any shrink/
       reroute state — the physical fault is still there); an unhealthy
       one retries with doubled backoff until ``max_retries``, then
       escalates.  ``ELECTRICAL`` is terminal.

    The scheduler consumes :attr:`partition_ports_cap`,
    :attr:`unusable_ports` and :attr:`electrical_fallback` every
    partitioner pass, so rung changes take effect without extra wiring.
    """

    def __init__(self, fabric_ports: int = 8,
                 policy: BackoffPolicy | None = None,
                 min_partition_ports: int = 2,
                 obs: Obs = NULL_OBS) -> None:
        if fabric_ports < 2:
            raise ValueError(f"need >= 2 fabric ports, got {fabric_ports}")
        self.policy = policy or BackoffPolicy()
        self.fabric_ports = fabric_ports
        self.min_partition_ports = max(
            2, min_partition_ports - min_partition_ports % 2)
        self.rung = Rung.HEALTHY
        self.attempt = 0
        self.next_action_cycle: int | None = None
        #: Largest partition the scheduler may grant (shrinks per rung).
        self.partition_ports_cap = fabric_ports
        #: Fabric ports retired from placement (dead-link endpoints).
        self.unusable_ports: set[int] = set()
        self.transitions: list[LadderTransition] = []
        self.stats = LadderStats()
        self.last_error = 0.0
        self.obs = obs
        self._tracer = obs.tracer
        self._events = obs.events
        self._m_detections = obs.metrics.counter("core.ladder_detections")
        self._m_attempts = obs.metrics.counter("core.ladder_attempts")
        self._m_recoveries = obs.metrics.counter("core.ladder_recoveries")
        self._m_escalations = obs.metrics.counter("core.ladder_escalations")
        self._g_rung = obs.metrics.gauge("core.ladder_rung")
        self._g_cap = obs.metrics.gauge("core.partition_ports_cap")
        self._g_cap.set(float(self.partition_ports_cap))

    # -- state queries -----------------------------------------------------

    @property
    def healthy(self) -> bool:
        return self.rung is Rung.HEALTHY

    @property
    def electrical_fallback(self) -> bool:
        return self.rung is Rung.ELECTRICAL

    def due(self, cycle: int) -> bool:
        """Is a recovery attempt scheduled at or before ``cycle``?"""
        return (self.next_action_cycle is not None
                and cycle >= self.next_action_cycle
                and self.rung not in (Rung.HEALTHY, Rung.ELECTRICAL))

    # -- protocol ----------------------------------------------------------

    def detect(self, cycle: int, error: float = 0.0) -> bool:
        """Arm the ladder on an unhealthy probe; no-op unless HEALTHY."""
        self.last_error = float(error)
        if self.rung is not Rung.HEALTHY:
            return False
        self.stats.detections += 1
        self._m_detections.inc()
        self._enter(cycle, Rung.RECALIBRATE, reason="health_probe")
        return True

    def attempt_started(self, cycle: int) -> None:
        """The caller is executing the current rung's recovery action."""
        self.stats.attempts += 1
        self._m_attempts.inc()
        self.next_action_cycle = None
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "faults", "ladder_attempt", cycle,
                rung=self.rung.name, attempt=self.attempt)

    def attempt_result(self, cycle: int, healthy: bool,
                       error: float | None = None) -> None:
        """Report the post-action probe; recover, retry, or escalate."""
        if error is not None:
            self.last_error = float(error)
        if healthy:
            self._recover(cycle)
            return
        self.attempt += 1
        if self.attempt > self.policy.max_retries:
            self._escalate(cycle, reason="retries_exhausted")
        else:
            delay = self.policy.delay_cycles(self.attempt)
            self.stats.backoff_cycles += delay
            self.next_action_cycle = cycle + delay

    def mark_dead_port(self, port: int) -> None:
        """Retire a fabric port from future partition placement."""
        self.unusable_ports.add(int(port))

    # -- internals ---------------------------------------------------------

    def _recover(self, cycle: int) -> None:
        rung = self.rung
        self.stats.recoveries += 1
        self.stats.recovered_rungs.append(rung.name)
        self._m_recoveries.inc()
        self._transition(cycle, Rung.HEALTHY,
                         reason=f"recovered_at_{rung.name.lower()}")
        self.attempt = 0
        self.next_action_cycle = None

    def _escalate(self, cycle: int, reason: str) -> None:
        if self.rung is Rung.ELECTRICAL:
            return
        self.stats.escalations += 1
        self._m_escalations.inc()
        self._enter(cycle, Rung(self.rung + 1), reason=reason)

    def _enter(self, cycle: int, rung: Rung, reason: str) -> None:
        """Transition to ``rung`` and apply its entry action."""
        self._transition(cycle, rung, reason)
        self.attempt = 0
        self.stats.rung_entries[rung.name] = \
            self.stats.rung_entries.get(rung.name, 0) + 1
        if rung is Rung.SHRINK:
            half = self.partition_ports_cap // 2
            half -= half % 2
            self.partition_ports_cap = max(self.min_partition_ports, half)
            self._g_cap.set(float(self.partition_ports_cap))
        if rung is Rung.ELECTRICAL:
            self.next_action_cycle = None
        else:
            delay = self.policy.delay_cycles(0)
            self.stats.backoff_cycles += delay
            self.next_action_cycle = cycle + delay

    def _transition(self, cycle: int, dst: Rung, reason: str) -> None:
        src = self.rung
        self.rung = dst
        self.transitions.append(LadderTransition(
            cycle=cycle, src=src.name, dst=dst.name, reason=reason))
        self.obs.metrics.counter(
            "core.ladder_transitions", dst=dst.name).inc()
        self._g_rung.set(float(int(dst)))
        if self._events.enabled:
            self._events.emit(
                "ladder_transition", cycle,
                src=src.name, dst=dst.name, reason=reason,
                error=round(self.last_error, 6),
                partition_ports_cap=self.partition_ports_cap)
        if self._tracer.enabled:
            self._tracer.instant(
                "core", "faults", "ladder_transition", cycle,
                src=src.name, dst=dst.name, reason=reason,
                error=round(self.last_error, 6))

    def to_dict(self) -> dict:
        """JSON-ready snapshot for campaign records."""
        return {
            "rung": self.rung.name,
            "partition_ports_cap": self.partition_ports_cap,
            "unusable_ports": sorted(self.unusable_ports),
            "transitions": [t.to_dict() for t in self.transitions],
            **self.stats.to_dict(),
        }
