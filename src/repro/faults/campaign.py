"""Fault-injection campaigns: inject, detect, degrade, measure.

One campaign run co-simulates the full reliability loop on a live
fabric + network:

* a :class:`~repro.faults.injector.FaultyMesh` programmed with a random
  unitary target stands in for the compute partition's SVD circuit;
* a :class:`~repro.noc.flumen_net.FlumenNetwork` carries synthetic
  traffic while Algorithm 1 grants compute partitions;
* a seeded :class:`~repro.faults.models.FaultSchedule` fires mid-run;
* the control unit's :class:`~repro.core.control_unit.HealthMonitor`
  detects the fault (basis-vector transfer probe + received-power ENOB);
* the :class:`~repro.faults.ladder.DegradationLadder` walks its rungs —
  this module performs the rung *actions* (recalibration via
  :func:`~repro.photonics.calibration.calibrate_by_decomposition`,
  partition shrink, network reroute) and reports back.

The per-run record captures accuracy loss (ENOB), runtime/energy
overhead of the recovery, and the recovery statistics the CLI
aggregates per fault class.  Everything is derived from the seed — two
runs of ``python -m repro faults --seed 0`` are byte-identical — and a
zero-fault campaign leaves every simulation path untouched, which the
attached golden-reference record cross-checks against the pinned
golden-numbers results.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.engine import point_seed
from repro.config import DeviceParams, SystemConfig
from repro.core.accelerator import plan_offload
from repro.core.control_unit import (
    ComputeRequest,
    HealthMonitor,
    MZIMControlUnit,
)
from repro.core.scheduler import FlumenScheduler, electrical_duration_cycles
from repro.faults.injector import FaultDomain, FaultInjector, FaultyMesh
from repro.faults.ladder import BackoffPolicy, DegradationLadder, Rung
from repro.faults.models import FaultSchedule, fault_class, registered_faults
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.traffic import TrafficGenerator
from repro.obs import NULL_OBS, Obs
from repro.photonics.calibration import calibrate_by_decomposition, matrix_error
from repro.photonics.clements import decompose, random_unitary
from repro.photonics.noise import effective_bits, snr_to_enob

#: Pseudo fault kind for a control campaign with no injections.
NO_FAULT = "none"
#: Received optical power at nominal laser output (the AnalogMVM default).
NOMINAL_RECEIVED_POWER_W = 50e-6
#: Digital precision of the electrical fallback path (Table 1: 8-bit).
ELECTRICAL_BITS = 8.0


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of one fault campaign (one fault class, many runs)."""

    fault: str = NO_FAULT
    seed: int = 0
    runs: int = 4
    cycles: int = 1500
    magnitude: float = 1.0
    ports: int = 8
    nodes: int = 16
    load: float = 0.25
    request_period: int = 150
    probe_interval: int = 48
    error_threshold: float = 0.05
    min_effective_bits: float = 4.0
    #: Campaign default is snappier than the BackoffPolicy defaults so
    #: the full ladder (4 rungs x retries) fits inside ``cycles``.
    backoff: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        base_cycles=16, factor=2.0, max_retries=2,
        max_backoff_cycles=512))
    #: Attach the golden-numbers cross-check to zero-fault campaigns.
    golden_reference: bool = True
    #: Mesh arrangement (a :mod:`repro.photonics.registry` name) the
    #: compute partition under test is decomposed with.
    mesh_architecture: str = "clements"

    def __post_init__(self) -> None:
        if self.fault != NO_FAULT:
            fault_class(self.fault)  # raises with the registered list
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.cycles < 64:
            raise ValueError(f"cycles must be >= 64, got {self.cycles}")
        from repro.photonics.registry import mesh_factory
        mesh_factory(self.mesh_architecture)  # raises listing known names

    def to_dict(self) -> dict:
        record = dataclasses.asdict(self)
        return record


def campaign_fault_kinds() -> tuple[str, ...]:
    """Fault kinds a default campaign covers: controls plus registry."""
    return (NO_FAULT, *registered_faults())


def _error_enob(error: float) -> float:
    """Matrix-error-limited ENOB, capped at the digital precision."""
    snr_db = -20.0 * math.log10(max(float(error), 1e-12))
    return min(ELECTRICAL_BITS, snr_to_enob(snr_db))


class _CampaignRun:
    """One seeded run: fabric, network, monitor, ladder, and actions."""

    def __init__(self, spec: CampaignSpec, run_index: int,
                 obs: Obs = NULL_OBS) -> None:
        self.spec = spec
        self.obs = obs
        self.seed = point_seed(spec.seed, f"{spec.fault}/{run_index}")
        self.rng = np.random.default_rng(self.seed)
        self.system = SystemConfig()
        self.devices = DeviceParams()
        self.ports = spec.ports
        # Clements stays on the direct path (bit-identical to the golden
        # pins); alternatives resolve through the registry, and stuck
        # faults widen to the architecture's physical fault domains.
        if spec.mesh_architecture == "clements":
            self._decompose = decompose
            self._fault_arch = None
        else:
            from repro.photonics.registry import make_mesh
            self._fault_arch = make_mesh(spec.mesh_architecture)
            self._decompose = self._fault_arch.decompose
        self.target = random_unitary(spec.ports, self.rng)
        self.domain = FaultDomain(
            mesh=FaultyMesh(self._decompose(self.target),
                            architecture=self._fault_arch))
        self.net = FlumenNetwork(spec.nodes, obs=obs)
        self.domain.network = self.net
        self.ladder = DegradationLadder(
            fabric_ports=spec.ports, policy=spec.backoff, obs=obs)
        self.domain.ladder = self.ladder
        self.monitor = HealthMonitor(
            mesh_probe=self._mesh_probe,
            link_probe=self.domain.link_error,
            power_probe=self.received_power,
            error_threshold=spec.error_threshold,
            min_effective_bits=spec.min_effective_bits,
            interval_cycles=spec.probe_interval,
            obs=obs)
        self.control = MZIMControlUnit(self.net, self.system, obs=obs,
                                       health=self.monitor)
        self.scheduler = FlumenScheduler(self.control, self.system,
                                         obs=obs, ladder=self.ladder)
        self.traffic = TrafficGenerator(spec.nodes, "uniform", spec.load,
                                        seed=self.seed)
        if spec.fault == NO_FAULT:
            schedule = FaultSchedule()
        else:
            schedule = FaultSchedule.seeded(
                [spec.fault], self.seed, window_cycles=spec.cycles,
                ports=spec.ports, nodes=spec.nodes,
                magnitude=spec.magnitude)
        self.injector = FaultInjector(schedule, self.domain,
                                      seed=self.seed, obs=obs)
        self.job = plan_offload(spec.ports, spec.ports, 256,
                                mzim_size=spec.ports,
                                wavelengths=self.system.compute
                                .computation_wavelengths)
        self.recalibrations = 0
        self.submitted = 0
        self.detected_cycle: int | None = None
        self.error_peak = 0.0

    # -- probes ------------------------------------------------------------

    def _mesh_probe(self) -> float:
        return matrix_error(self.domain.mesh.measure(), self.target)

    def received_power(self) -> float:
        """Received optical power given laser health and partition size.

        Shrinking the partition removes MZI columns from the light path,
        so each retired column claws back one column's insertion loss —
        the physical reason the SHRINK rung helps against laser
        degradation.
        """
        gain_db = self.devices.mzi.insertion_loss_db \
            * (self.spec.ports - self.ports)
        return NOMINAL_RECEIVED_POWER_W \
            * self.domain.laser_power_fraction * 10.0 ** (gain_db / 10.0)

    # -- ladder rung actions ----------------------------------------------

    def _act_recalibrate(self) -> None:
        calibrate_by_decomposition(
            self.domain.mesh, self.target, iterations=1,
            architecture=self.spec.mesh_architecture)
        self.recalibrations += 1

    def _act_shrink(self, cycle: int) -> None:
        """Re-place the compute circuit on a smaller, fault-free block.

        The shrunken partition sits on fresh columns, so stuck devices
        in the retired region stop mattering; continuous drift keeps
        acting on the new mesh through the injector's domain reference.
        """
        new_ports = self.ladder.partition_ports_cap
        if new_ports >= self.ports:
            return
        self.ports = new_ports
        sub_rng = np.random.default_rng(
            point_seed(self.seed, f"shrink/{cycle}"))
        self.target = random_unitary(new_ports, sub_rng)
        self.domain.mesh = FaultyMesh(self._decompose(self.target),
                                      architecture=self._fault_arch)
        self.recalibrations += 1  # the new block is programmed once

    def _act_reroute(self) -> None:
        for src, dst in self.domain.unrouted_pairs():
            penalty = self.domain.detour_cycles.get((src, dst), 6)
            self.net.reroute_pair(src, dst, penalty)
            self.domain.rerouted_pairs.add((src, dst))
            port = dst * self.spec.ports // self.spec.nodes
            self.ladder.mark_dead_port(port)

    def _run_ladder_action(self, cycle: int) -> None:
        self.ladder.attempt_started(cycle)
        rung = self.ladder.rung
        if rung is Rung.RECALIBRATE:
            self._act_recalibrate()
        elif rung is Rung.SHRINK:
            self._act_shrink(cycle)
        elif rung is Rung.REROUTE:
            self._act_reroute()
        sample = self.monitor.probe(cycle)
        self.ladder.attempt_result(cycle, bool(sample["healthy"]),
                                   error=float(sample["error"]))

    # -- main loop ---------------------------------------------------------

    def execute(self) -> dict:
        spec = self.spec
        enob_nominal = min(
            float(effective_bits(NOMINAL_RECEIVED_POWER_W, self.devices)),
            _error_enob(self._mesh_probe()))
        sampler = self.obs.sampler
        for cycle in range(spec.cycles):
            for packet in self.traffic.packets_for_cycle(self.net.cycle):
                self.net.offer_packet(packet)
            if sampler is not None and cycle & 63 == 0:
                # Throttled snapshot offer (same rationale as
                # SimKernel.run): the sampler's interval stays the
                # sampling authority.
                sampler.tick(cycle)
            self.injector.tick(cycle)
            if cycle % spec.request_period == 0 and (
                    self.control.advise_offload()
                    or self.ladder.electrical_fallback):
                # Explicit per-run id: the default factory is a
                # process-global counter, which would leak run ordering
                # into event payloads and break byte-identical
                # same-seed event logs.
                self.control.compute_buffer.append(ComputeRequest(
                    node=cycle % spec.nodes, plan=self.job,
                    matrix_key="campaign", submit_cycle=cycle,
                    ports_needed=max(2, spec.ports // 2),
                    duration_override=60, request_id=self.submitted))
                self.control.requests_received += 1
                self.submitted += 1
            sample = self.monitor.sample(cycle)
            if sample is not None:
                self.error_peak = max(self.error_peak,
                                      float(sample["error"]))
                if not sample["healthy"] and self.ladder.healthy:
                    if self.ladder.detect(cycle, error=sample["error"]) \
                            and self.detected_cycle is None:
                        self.detected_cycle = cycle
            if self.ladder.due(cycle):
                self._run_ladder_action(cycle)
            self.scheduler.tick()
            self.net.step()
        self.scheduler.drain(max_cycles=60_000)
        return self._record(enob_nominal)

    # -- reporting ---------------------------------------------------------

    def _overheads(self) -> dict:
        """Runtime and energy overhead of detection + recovery.

        Backoff waits come straight from the ladder; each recalibration
        or re-placement pays one full-mesh programming event (Table 1's
        6 ns compute programming, DAC power for the write); electrical
        fallback jobs pay the core-path latency/energy difference vs.
        the photonic job they replace.
        """
        from repro.photonics.compute_energy import MZIMComputeModel

        system = self.system
        program_cycles = math.ceil(system.compute.mzim_switch_delay_s
                                   * system.core.frequency_hz)
        recal_cycles = self.recalibrations * program_cycles
        recal_energy = self.recalibrations \
            * self.devices.converter.dac_power_w \
            * system.compute.mzim_switch_delay_s
        elec_jobs = self.scheduler.stats.electrical_completions
        elec_extra_cycles = 0
        elec_extra_energy = 0.0
        if elec_jobs:
            model = MZIMComputeModel()
            phot_cycles = 60  # the photonic duration_override above
            per_job = max(
                0, electrical_duration_cycles(self.job, system)
                - phot_cycles)
            elec_extra_cycles = elec_jobs * per_job
            n, vectors = self.spec.ports, self.job.vectors
            elec_extra_energy = elec_jobs * max(
                0.0, model.electrical_matmul_energy(n, vectors)
                - model.matmul_energy(n, vectors).total)
        backoff = self.ladder.stats.backoff_cycles
        runtime_overhead = backoff + recal_cycles + elec_extra_cycles
        return {
            "backoff_cycles": backoff,
            "recalibration_cycles": recal_cycles,
            "electrical_extra_cycles": elec_extra_cycles,
            "runtime_overhead_cycles": runtime_overhead,
            "runtime_overhead_fraction":
                runtime_overhead / self.spec.cycles,
            "energy_overhead_j": recal_energy + elec_extra_energy,
        }

    def _record(self, enob_nominal: float) -> dict:
        spec = self.spec
        error_final = max(self._mesh_probe(), self.domain.link_error())
        if self.ladder.electrical_fallback:
            # Terminal fallback computes digitally: accuracy is restored
            # at the electrical path's cost (visible in the overheads).
            enob_final = ELECTRICAL_BITS
        else:
            enob_final = min(
                float(effective_bits(self.received_power(), self.devices)),
                _error_enob(error_final))
        injected = [
            {"cycle": e.cycle, "kind": e.fault.kind,
             "params": e.fault.params()}
            for e in self.injector.injected]
        offered = self.net.injected_packets
        delivered = self.net.latency.received
        stats = self.scheduler.stats
        return {
            "fault": spec.fault,
            "magnitude": spec.magnitude,
            "seed": self.seed,
            "injected": injected,
            "detected_cycle": self.detected_cycle,
            "detection_latency": (
                None if self.detected_cycle is None or not injected
                else self.detected_cycle - injected[0]["cycle"]),
            "final_rung": self.ladder.rung.name,
            "recovered": self.ladder.healthy,
            "ladder": self.ladder.to_dict(),
            "recalibrations": self.recalibrations,
            "error_peak": self.error_peak,
            "error_final": error_final,
            "enob_nominal": enob_nominal,
            "enob_final": enob_final,
            "enob_loss_bits": max(0.0, enob_nominal - enob_final),
            **self._overheads(),
            "compute_submitted": self.submitted,
            "compute_completed": stats.completed,
            "electrical_completions": stats.electrical_completions,
            "packets_offered": offered,
            "packets_delivered": delivered,
            "packets_conserved": offered == delivered,
            "network_quiescent": self.net.quiescent(),
        }


def run_single(spec: CampaignSpec, run_index: int,
               obs: Obs = NULL_OBS) -> dict:
    """Execute one seeded campaign run and return its record."""
    return _CampaignRun(spec, run_index, obs=obs).execute()


def golden_reference_record() -> dict:
    """The golden-numbers cross-check for zero-fault campaigns.

    Runs the exact configuration the pinned golden tests use —
    ``SystemModel(traffic_seed=17)`` on ``ImageBlur(64, 64)`` across
    every registered configuration — so a campaign artifact with no
    faults enabled carries proof that the fault subsystem left the
    simulation byte-identical.
    """
    from repro.analysis.tasks import run_to_record
    from repro.core.system import SystemModel
    from repro.workloads import ImageBlur

    model = SystemModel(traffic_seed=17)
    workload = ImageBlur(height=64, width=64)
    runs = model.run_all(workload)
    return {name: run_to_record(run) for name, run in runs.items()}


def _aggregate(records: list[dict]) -> dict:
    """Campaign-level summary the CLI table prints."""
    def mean(key: str) -> float:
        values = [float(r[key]) for r in records if r[key] is not None]
        return sum(values) / len(values) if values else 0.0

    rungs: dict[str, int] = {}
    for record in records:
        rungs[record["final_rung"]] = \
            rungs.get(record["final_rung"], 0) + 1
    detections = [r["detection_latency"] for r in records
                  if r["detection_latency"] is not None]
    return {
        "runs": len(records),
        "recovery_rate": mean("recovered"),
        "mean_detection_latency": (
            sum(detections) / len(detections) if detections else None),
        "mean_enob_loss_bits": mean("enob_loss_bits"),
        "mean_runtime_overhead_fraction":
            mean("runtime_overhead_fraction"),
        "mean_energy_overhead_j": mean("energy_overhead_j"),
        "final_rungs": rungs,
        "all_packets_conserved":
            all(r["packets_conserved"] for r in records),
    }


def csv_records(campaigns: list[dict]) -> list[dict]:
    """Flatten campaign records into per-run scalar rows for CSV export."""
    rows = []
    for campaign in campaigns:
        for index, run in enumerate(campaign["runs"]):
            rows.append({
                "fault": run["fault"],
                "magnitude": run["magnitude"],
                "run": index,
                "seed": run["seed"],
                "injected_cycle": (run["injected"][0]["cycle"]
                                   if run["injected"] else None),
                "detected_cycle": run["detected_cycle"],
                "detection_latency": run["detection_latency"],
                "final_rung": run["final_rung"],
                "recovered": run["recovered"],
                "attempts": run["ladder"]["attempts"],
                "recalibrations": run["recalibrations"],
                "backoff_cycles": run["backoff_cycles"],
                "error_peak": run["error_peak"],
                "error_final": run["error_final"],
                "enob_nominal": run["enob_nominal"],
                "enob_final": run["enob_final"],
                "enob_loss_bits": run["enob_loss_bits"],
                "runtime_overhead_cycles": run["runtime_overhead_cycles"],
                "runtime_overhead_fraction":
                    run["runtime_overhead_fraction"],
                "energy_overhead_j": run["energy_overhead_j"],
                "compute_submitted": run["compute_submitted"],
                "compute_completed": run["compute_completed"],
                "electrical_completions": run["electrical_completions"],
                "packets_conserved": run["packets_conserved"],
            })
    return rows


def run_fault_campaign(spec: CampaignSpec, obs: Obs = NULL_OBS) -> dict:
    """Run a full campaign (``spec.runs`` seeded runs) for one fault."""
    records = [run_single(spec, index, obs=obs)
               for index in range(spec.runs)]
    out = {
        "spec": spec.to_dict(),
        "runs": records,
        "aggregate": _aggregate(records),
    }
    if spec.fault == NO_FAULT and spec.golden_reference:
        out["golden_reference"] = golden_reference_record()
    return out
