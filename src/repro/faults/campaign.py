"""Fault-injection campaigns: inject, detect, degrade, measure.

One campaign run co-simulates the full reliability loop on a live
fabric + network:

* a :class:`~repro.faults.injector.FaultyMesh` programmed with a random
  unitary target stands in for the compute partition's SVD circuit;
* a :class:`~repro.noc.flumen_net.FlumenNetwork` carries synthetic
  traffic while Algorithm 1 grants compute partitions;
* a seeded :class:`~repro.faults.models.FaultSchedule` fires mid-run;
* the control unit's :class:`~repro.core.control_unit.HealthMonitor`
  detects the fault (basis-vector transfer probe + received-power ENOB);
* the :class:`~repro.faults.ladder.DegradationLadder` walks its rungs —
  this module performs the rung *actions* (recalibration via
  :func:`~repro.photonics.calibration.calibrate_by_decomposition`,
  partition shrink, network reroute) and reports back.

The per-run record captures accuracy loss (ENOB), runtime/energy
overhead of the recovery, and the recovery statistics the CLI
aggregates per fault class.  Everything is derived from the seed — two
runs of ``python -m repro faults --seed 0`` are byte-identical — and a
zero-fault campaign leaves every simulation path untouched, which the
attached golden-reference record cross-checks against the pinned
golden-numbers results.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.engine import point_seed
from repro.config import DeviceParams, SystemConfig
from repro.core.accelerator import plan_offload
from repro.core.control_unit import ComputeRequest, MZIMControlUnit
from repro.core.scheduler import FlumenScheduler, electrical_duration_cycles
from repro.faults.injector import FaultInjector
from repro.faults.ladder import BackoffPolicy
from repro.faults.models import FaultSchedule, fault_class, registered_faults
from repro.faults.recovery import NOMINAL_RECEIVED_POWER_W, FabricRecovery
from repro.noc.flumen_net import FlumenNetwork
from repro.noc.traffic import TrafficGenerator
from repro.obs import NULL_OBS, Obs
from repro.photonics.noise import effective_bits, snr_to_enob

#: Pseudo fault kind for a control campaign with no injections.
NO_FAULT = "none"
#: Digital precision of the electrical fallback path (Table 1: 8-bit).
ELECTRICAL_BITS = 8.0


@dataclass(frozen=True)
class CampaignSpec:
    """Parameters of one fault campaign (one fault class, many runs)."""

    fault: str = NO_FAULT
    seed: int = 0
    runs: int = 4
    cycles: int = 1500
    magnitude: float = 1.0
    ports: int = 8
    nodes: int = 16
    load: float = 0.25
    request_period: int = 150
    probe_interval: int = 48
    error_threshold: float = 0.05
    min_effective_bits: float = 4.0
    #: Campaign default is snappier than the BackoffPolicy defaults so
    #: the full ladder (4 rungs x retries) fits inside ``cycles``.
    backoff: BackoffPolicy = field(default_factory=lambda: BackoffPolicy(
        base_cycles=16, factor=2.0, max_retries=2,
        max_backoff_cycles=512))
    #: Attach the golden-numbers cross-check to zero-fault campaigns.
    golden_reference: bool = True
    #: Mesh arrangement (a :mod:`repro.photonics.registry` name) the
    #: compute partition under test is decomposed with.
    mesh_architecture: str = "clements"

    def __post_init__(self) -> None:
        if self.fault != NO_FAULT:
            fault_class(self.fault)  # raises with the registered list
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.cycles < 64:
            raise ValueError(f"cycles must be >= 64, got {self.cycles}")
        from repro.photonics.registry import mesh_factory
        mesh_factory(self.mesh_architecture)  # raises listing known names

    def to_dict(self) -> dict:
        record = dataclasses.asdict(self)
        return record


def campaign_fault_kinds() -> tuple[str, ...]:
    """Fault kinds a default campaign covers: controls plus registry."""
    return (NO_FAULT, *registered_faults())


def _error_enob(error: float) -> float:
    """Matrix-error-limited ENOB, capped at the digital precision."""
    snr_db = -20.0 * math.log10(max(float(error), 1e-12))
    return min(ELECTRICAL_BITS, snr_to_enob(snr_db))


class _CampaignRun:
    """One seeded run: fabric, network, monitor, ladder, and actions.

    The reliability core (mesh, domain, monitor, ladder, rung actions)
    lives in :class:`~repro.faults.recovery.FabricRecovery`, shared
    with the serving daemon; this class adds the campaign-specific
    parts — synthetic traffic, periodic compute offloads, the fault
    schedule, and the per-run accuracy/overhead record.
    """

    def __init__(self, spec: CampaignSpec, run_index: int,
                 obs: Obs = NULL_OBS) -> None:
        self.spec = spec
        self.obs = obs
        self.seed = point_seed(spec.seed, f"{spec.fault}/{run_index}")
        self.rng = np.random.default_rng(self.seed)
        self.system = SystemConfig()
        self.devices = DeviceParams()
        self.recovery = FabricRecovery(
            ports=spec.ports, nodes=spec.nodes, seed=self.seed,
            rng=self.rng, backoff=spec.backoff,
            probe_interval=spec.probe_interval,
            error_threshold=spec.error_threshold,
            min_effective_bits=spec.min_effective_bits,
            mesh_architecture=spec.mesh_architecture,
            devices=self.devices, obs=obs)
        self.domain = self.recovery.domain
        self.ladder = self.recovery.ladder
        self.monitor = self.recovery.monitor
        self.net = FlumenNetwork(spec.nodes, obs=obs)
        self.recovery.bind_network(self.net)
        self.control = MZIMControlUnit(self.net, self.system, obs=obs,
                                       health=self.monitor)
        self.scheduler = FlumenScheduler(self.control, self.system,
                                         obs=obs, ladder=self.ladder)
        self.traffic = TrafficGenerator(spec.nodes, "uniform", spec.load,
                                        seed=self.seed)
        if spec.fault == NO_FAULT:
            schedule = FaultSchedule()
        else:
            schedule = FaultSchedule.seeded(
                [spec.fault], self.seed, window_cycles=spec.cycles,
                ports=spec.ports, nodes=spec.nodes,
                magnitude=spec.magnitude)
        self.injector = FaultInjector(schedule, self.domain,
                                      seed=self.seed, obs=obs)
        self.job = plan_offload(spec.ports, spec.ports, 256,
                                mzim_size=spec.ports,
                                wavelengths=self.system.compute
                                .computation_wavelengths)
        self.submitted = 0

    # -- main loop ---------------------------------------------------------

    def execute(self) -> dict:
        spec = self.spec
        enob_nominal = min(
            float(effective_bits(NOMINAL_RECEIVED_POWER_W, self.devices)),
            _error_enob(self.recovery.mesh_probe()))
        sampler = self.obs.sampler
        for cycle in range(spec.cycles):
            for packet in self.traffic.packets_for_cycle(self.net.cycle):
                self.net.offer_packet(packet)
            if sampler is not None and cycle & 63 == 0:
                # Throttled snapshot offer (same rationale as
                # SimKernel.run): the sampler's interval stays the
                # sampling authority.
                sampler.tick(cycle)
            self.injector.tick(cycle)
            if cycle % spec.request_period == 0 and (
                    self.control.advise_offload()
                    or self.ladder.electrical_fallback):
                # Explicit per-run id: the default factory is a
                # process-global counter, which would leak run ordering
                # into event payloads and break byte-identical
                # same-seed event logs.
                self.control.compute_buffer.append(ComputeRequest(
                    node=cycle % spec.nodes, plan=self.job,
                    matrix_key="campaign", submit_cycle=cycle,
                    ports_needed=max(2, spec.ports // 2),
                    duration_override=60, request_id=self.submitted))
                self.control.requests_received += 1
                self.submitted += 1
            self.recovery.service(cycle)
            self.scheduler.tick()
            self.net.step()
        self.scheduler.drain(max_cycles=60_000)
        return self._record(enob_nominal)

    # -- reporting ---------------------------------------------------------

    def _overheads(self) -> dict:
        """Runtime and energy overhead of detection + recovery.

        Backoff waits come straight from the ladder; each recalibration
        or re-placement pays one full-mesh programming event (Table 1's
        6 ns compute programming, DAC power for the write); electrical
        fallback jobs pay the core-path latency/energy difference vs.
        the photonic job they replace.
        """
        from repro.photonics.compute_energy import MZIMComputeModel

        system = self.system
        program_cycles = math.ceil(system.compute.mzim_switch_delay_s
                                   * system.core.frequency_hz)
        recalibrations = self.recovery.recalibrations
        recal_cycles = recalibrations * program_cycles
        recal_energy = recalibrations \
            * self.devices.converter.dac_power_w \
            * system.compute.mzim_switch_delay_s
        elec_jobs = self.scheduler.stats.electrical_completions
        elec_extra_cycles = 0
        elec_extra_energy = 0.0
        if elec_jobs:
            model = MZIMComputeModel()
            phot_cycles = 60  # the photonic duration_override above
            per_job = max(
                0, electrical_duration_cycles(self.job, system)
                - phot_cycles)
            elec_extra_cycles = elec_jobs * per_job
            n, vectors = self.spec.ports, self.job.vectors
            elec_extra_energy = elec_jobs * max(
                0.0, model.electrical_matmul_energy(n, vectors)
                - model.matmul_energy(n, vectors).total)
        backoff = self.ladder.stats.backoff_cycles
        runtime_overhead = backoff + recal_cycles + elec_extra_cycles
        return {
            "backoff_cycles": backoff,
            "recalibration_cycles": recal_cycles,
            "electrical_extra_cycles": elec_extra_cycles,
            "runtime_overhead_cycles": runtime_overhead,
            "runtime_overhead_fraction":
                runtime_overhead / self.spec.cycles,
            "energy_overhead_j": recal_energy + elec_extra_energy,
        }

    def _record(self, enob_nominal: float) -> dict:
        spec = self.spec
        error_final = max(self.recovery.mesh_probe(),
                          self.domain.link_error())
        if self.ladder.electrical_fallback:
            # Terminal fallback computes digitally: accuracy is restored
            # at the electrical path's cost (visible in the overheads).
            enob_final = ELECTRICAL_BITS
        else:
            enob_final = min(
                float(effective_bits(self.recovery.received_power(),
                                     self.devices)),
                _error_enob(error_final))
        injected = [
            {"cycle": e.cycle, "kind": e.fault.kind,
             "params": e.fault.params()}
            for e in self.injector.injected]
        offered = self.net.injected_packets
        delivered = self.net.latency.received
        stats = self.scheduler.stats
        return {
            "fault": spec.fault,
            "magnitude": spec.magnitude,
            "seed": self.seed,
            "injected": injected,
            "detected_cycle": self.recovery.detected_cycle,
            "detection_latency": (
                None if self.recovery.detected_cycle is None
                or not injected
                else self.recovery.detected_cycle - injected[0]["cycle"]),
            "final_rung": self.ladder.rung.name,
            "recovered": self.ladder.healthy,
            "ladder": self.ladder.to_dict(),
            "recalibrations": self.recovery.recalibrations,
            "error_peak": self.recovery.error_peak,
            "error_final": error_final,
            "enob_nominal": enob_nominal,
            "enob_final": enob_final,
            "enob_loss_bits": max(0.0, enob_nominal - enob_final),
            **self._overheads(),
            "compute_submitted": self.submitted,
            "compute_completed": stats.completed,
            "electrical_completions": stats.electrical_completions,
            "packets_offered": offered,
            "packets_delivered": delivered,
            "packets_conserved": offered == delivered,
            "network_quiescent": self.net.quiescent(),
        }


def run_single(spec: CampaignSpec, run_index: int,
               obs: Obs = NULL_OBS) -> dict:
    """Execute one seeded campaign run and return its record."""
    return _CampaignRun(spec, run_index, obs=obs).execute()


def golden_reference_record() -> dict:
    """The golden-numbers cross-check for zero-fault campaigns.

    Runs the exact configuration the pinned golden tests use —
    ``SystemModel(traffic_seed=17)`` on ``ImageBlur(64, 64)`` across
    every registered configuration — so a campaign artifact with no
    faults enabled carries proof that the fault subsystem left the
    simulation byte-identical.
    """
    from repro.analysis.tasks import run_to_record
    from repro.core.system import SystemModel
    from repro.workloads import ImageBlur

    model = SystemModel(traffic_seed=17)
    workload = ImageBlur(height=64, width=64)
    runs = model.run_all(workload)
    return {name: run_to_record(run) for name, run in runs.items()}


def _aggregate(records: list[dict]) -> dict:
    """Campaign-level summary the CLI table prints."""
    def mean(key: str) -> float:
        values = [float(r[key]) for r in records if r[key] is not None]
        return sum(values) / len(values) if values else 0.0

    rungs: dict[str, int] = {}
    for record in records:
        rungs[record["final_rung"]] = \
            rungs.get(record["final_rung"], 0) + 1
    detections = [r["detection_latency"] for r in records
                  if r["detection_latency"] is not None]
    return {
        "runs": len(records),
        "recovery_rate": mean("recovered"),
        "mean_detection_latency": (
            sum(detections) / len(detections) if detections else None),
        "mean_enob_loss_bits": mean("enob_loss_bits"),
        "mean_runtime_overhead_fraction":
            mean("runtime_overhead_fraction"),
        "mean_energy_overhead_j": mean("energy_overhead_j"),
        "final_rungs": rungs,
        "all_packets_conserved":
            all(r["packets_conserved"] for r in records),
    }


def csv_records(campaigns: list[dict]) -> list[dict]:
    """Flatten campaign records into per-run scalar rows for CSV export."""
    rows = []
    for campaign in campaigns:
        for index, run in enumerate(campaign["runs"]):
            rows.append({
                "fault": run["fault"],
                "magnitude": run["magnitude"],
                "run": index,
                "seed": run["seed"],
                "injected_cycle": (run["injected"][0]["cycle"]
                                   if run["injected"] else None),
                "detected_cycle": run["detected_cycle"],
                "detection_latency": run["detection_latency"],
                "final_rung": run["final_rung"],
                "recovered": run["recovered"],
                "attempts": run["ladder"]["attempts"],
                "recalibrations": run["recalibrations"],
                "backoff_cycles": run["backoff_cycles"],
                "error_peak": run["error_peak"],
                "error_final": run["error_final"],
                "enob_nominal": run["enob_nominal"],
                "enob_final": run["enob_final"],
                "enob_loss_bits": run["enob_loss_bits"],
                "runtime_overhead_cycles": run["runtime_overhead_cycles"],
                "runtime_overhead_fraction":
                    run["runtime_overhead_fraction"],
                "energy_overhead_j": run["energy_overhead_j"],
                "compute_submitted": run["compute_submitted"],
                "compute_completed": run["compute_completed"],
                "electrical_completions": run["electrical_completions"],
                "packets_conserved": run["packets_conserved"],
            })
    return rows


def run_fault_campaign(spec: CampaignSpec, obs: Obs = NULL_OBS) -> dict:
    """Run a full campaign (``spec.runs`` seeded runs) for one fault."""
    records = [run_single(spec, index, obs=obs)
               for index in range(spec.runs)]
    out = {
        "spec": spec.to_dict(),
        "runs": records,
        "aggregate": _aggregate(records),
    }
    if spec.fault == NO_FAULT and spec.golden_reference:
        out["golden_reference"] = golden_reference_record()
    return out
