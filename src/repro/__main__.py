"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library inventory: configuration, fabric structure, workload shapes.
``latency``
    Figure 11-style latency/load table for one topology + pattern.
``compute``
    Figure 12(b)-style photonic-vs-electrical compute energy table.
``system``
    Run one workload through all five configurations (Figures 13-15 row).
``area``
    Section 5.1 area report.
``sweep``
    Full workload x configuration sweep through the parallel execution
    engine, with the on-disk result cache and a JSON artifact.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.config import DEFAULT_SYSTEM
    from repro.multicore.area import flumen_mzim_mzis
    from repro.workloads import paper_workloads

    cfg = DEFAULT_SYSTEM
    print(format_table(
        ["quantity", "value"],
        [["cores", cfg.core.count],
         ["chiplets", cfg.chiplets],
         ["MZIM ports", cfg.mzim_ports],
         ["MZIM MZIs", flumen_mzim_mzis(cfg.mzim_ports)],
         ["photonic link", f"{cfg.phot_link.bandwidth_bps / 1e9:.0f} Gbps"],
         ["compute wavelengths", cfg.compute.computation_wavelengths],
         ["scheduler (tau, eta, zeta)",
          f"({cfg.scheduler.tau_cycles}, {cfg.scheduler.eta}, "
          f"{cfg.scheduler.zeta})"]],
        title="Flumen reproduction — system configuration"))
    rows = [[wl.name, f"{wl.total_macs():,}",
             len(wl.phases()), f"{wl.extra_core_ops():,}"]
            for wl in paper_workloads()]
    print()
    print(format_table(["workload", "MACs", "phases", "core-side ops"],
                       rows, title="Workloads (paper shapes)"))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.noc.simulation import SweepConfig, load_sweep

    cfg = SweepConfig(cycles=args.cycles, warmup=args.cycles // 3)
    loads = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    results = load_sweep(args.topology, args.pattern, loads, cfg)
    rows = [[r.load, f"{r.avg_latency:.1f}", f"{r.latency.p99:.1f}",
             "saturated" if r.saturated else ""] for r in results]
    print(format_table(
        ["load", "avg latency", "p99", ""],
        rows, title=f"{args.topology} / {args.pattern}"))
    return 0


def _cmd_compute(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.photonics.compute_energy import MZIMComputeModel

    model = MZIMComputeModel()
    rows = []
    for n in (8, 16, 32, 64):
        for m in (1, 4, 8):
            phot = model.matmul_energy(n, m).total
            elec = model.electrical_matmul_energy(n, m)
            rows.append([f"{n}x{n}", m, f"{phot * 1e12:.1f}",
                         f"{elec * 1e12:.1f}", f"{elec / phot:.1f}x"])
    print(format_table(
        ["MZIM", "vectors", "photonic (pJ)", "electrical (pJ)",
         "advantage"],
        rows, title="Compute energy (Figure 12b model)"))
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.core.system import SystemModel
    from repro.workloads import paper_workloads

    workloads = {wl.name: wl for wl in paper_workloads()}
    if args.workload not in workloads:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {sorted(workloads)}", file=sys.stderr)
        return 2
    runs = SystemModel().run_all(workloads[args.workload])
    rows = [[cfg, f"{r.runtime_s * 1e6:.1f}",
             f"{r.energy.total * 1e6:.1f}", f"{r.edp * 1e9:.3f}"]
            for cfg, r in runs.items()]
    print(format_table(
        ["config", "runtime (us)", "energy (uJ)", "EDP (nJ*s)"],
        rows, title=f"System model: {args.workload}"))
    mesh, fa = runs["mesh"], runs["flumen_a"]
    print(f"\nFlumen-A vs Mesh: {mesh.runtime_s / fa.runtime_s:.2f}x "
          f"speedup, {mesh.energy.total / fa.energy.total:.2f}x energy, "
          f"{mesh.edp / fa.edp:.2f}x EDP")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.multicore.area import AreaModel

    area = AreaModel()
    print(format_table(
        ["component", "mm^2"],
        [["Flumen endpoint", f"{area.flumen_endpoint().total:.2f}"],
         ["8x8 MZIM + controller",
          f"{area.mzim_with_controller():.2f}"],
         ["Flumen system", f"{area.flumen_system().total:.1f}"],
         ["Mesh system", f"{area.mesh_system().total:.1f}"]],
        title="Area (Section 5.1)"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.engine import (
        PointSpec,
        ResultCache,
        SweepEngine,
    )
    from repro.analysis.report import format_table
    from repro.core.system import CONFIGURATIONS
    from repro.workloads import paper_workloads

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    known_workloads = [wl.name for wl in paper_workloads()]
    workloads = list(dict.fromkeys(args.workloads or known_workloads))
    configs = list(dict.fromkeys(args.configs or CONFIGURATIONS))
    for name in workloads:
        if name not in known_workloads:
            print(f"unknown workload {name!r}; "
                  f"choose from {known_workloads}", file=sys.stderr)
            return 2
    for cfg in configs:
        if cfg not in CONFIGURATIONS:
            print(f"unknown configuration {cfg!r}; "
                  f"choose from {list(CONFIGURATIONS)}", file=sys.stderr)
            return 2

    shapes = "small" if args.small else "paper"
    points = [PointSpec(key=f"{wl}/{cfg}",
                        params={"workload": wl, "configuration": cfg,
                                "shapes": shapes})
              for wl in workloads for cfg in configs]
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def progress(done: int, total: int, result) -> None:
        origin = "cache" if result.from_cache else (
            "ok" if result.ok else "FAILED")
        print(f"  [{done}/{total}] {result.key}: {origin}",
              file=sys.stderr)

    engine = SweepEngine(jobs=args.jobs, cache=cache,
                         progress=progress if args.progress else None)
    run = engine.run("system_point", points, base_seed=args.seed)

    rows = [[r.metrics["workload"], r.metrics["configuration"],
             f"{r.metrics['runtime_s'] * 1e6:.1f}",
             f"{r.metrics['energy_total_j'] * 1e6:.1f}",
             f"{r.metrics['edp_js'] * 1e9:.3f}"]
            for r in run.ok_results()]
    print(format_table(
        ["workload", "config", "runtime (us)", "energy (uJ)",
         "EDP (nJ*s)"],
        rows, title=f"System sweep ({shapes} shapes, jobs={args.jobs})"))
    for failure in run.failed_results():
        print(f"FAILED {failure.key}: {failure.error}", file=sys.stderr)
    print(f"telemetry: {run.telemetry.summary()}")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(run.records(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {len(run.results)} records to {args.out}")
    return 1 if run.failed_results() else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Flumen (ISCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="configuration + workload inventory")

    lat = sub.add_parser("latency", help="latency vs load (Figure 11)")
    lat.add_argument("--topology", default="flumen",
                     choices=["ring", "mesh", "optbus", "flumen"])
    lat.add_argument("--pattern", default="uniform")
    lat.add_argument("--cycles", type=int, default=2000)

    sub.add_parser("compute", help="compute energy table (Figure 12b)")

    system = sub.add_parser("system",
                            help="full-system run (Figures 13-15)")
    system.add_argument("--workload", default="rotation3d")

    sub.add_parser("area", help="area report (Section 5.1)")

    swp = sub.add_parser(
        "sweep", help="parallel workload x configuration sweep "
                      "(Figures 13-15 grid)")
    swp.add_argument("--workloads", nargs="+", metavar="NAME",
                     help="workload subset (default: all five)")
    swp.add_argument("--configs", nargs="+", metavar="CFG",
                     help="configuration subset (default: all five)")
    swp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default: 1)")
    swp.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    swp.add_argument("--cache-dir", default=None,
                     help="cache directory (default: $FLUMEN_CACHE_DIR "
                          "or .flumen_cache)")
    swp.add_argument("--small", action="store_true",
                     help="reduced workload shapes (fast smoke runs)")
    swp.add_argument("--seed", type=int, default=17,
                     help="base seed for deterministic per-point seeding")
    swp.add_argument("--out", default=None, metavar="PATH",
                     help="write the metric records as JSON")
    swp.add_argument("--progress", action="store_true",
                     help="print per-point progress to stderr")

    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "latency": _cmd_latency,
        "compute": _cmd_compute,
        "system": _cmd_system,
        "area": _cmd_area,
        "sweep": _cmd_sweep,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
