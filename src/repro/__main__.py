"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library inventory: configuration, fabric structure, workload shapes.
``latency``
    Figure 11-style latency/load table for one topology + pattern.
``compute``
    Figure 12(b)-style photonic-vs-electrical compute energy table.
``system``
    Run one workload through all five configurations (Figures 13-15 row).
``area``
    Section 5.1 area report.
``sweep``
    Full workload x configuration sweep through the parallel execution
    engine, with the on-disk result cache and a JSON artifact.
``trace``
    One fully-instrumented run exported as Chrome trace-event JSON
    (Perfetto-loadable) plus a JSONL metrics snapshot.
``faults``
    Fault-injection campaigns (DESIGN.md §12): seeded faults injected
    mid-run, detected by the health monitor, recovered via the
    degradation ladder; reports ENOB loss, runtime/energy overhead and
    recovery statistics per fault class, with JSON/CSV artifacts.
``perf``
    Pinned performance suite (DESIGN.md §13): micro benchmarks of the
    vectorized photonic kernels (with in-run speedup vs the retained
    reference oracles) plus macro sweep/fault benchmarks, written to a
    ``BENCH_<rev>.json`` artifact and compared against a committed
    baseline (strict output-digest equality, tolerant wall clock).
``serve``
    Long-lived serving daemon (DESIGN.md §17): seeded client
    populations offer concurrent MVM/communication streams, token
    buckets shed overload, batches drain into the fleet MVM queue,
    Algorithm 1 repartitions under the observed load, and the
    degradation ladder handles mid-session faults — with optional live
    ``/metrics`` / ``/healthz`` over HTTP and byte-identical same-seed
    session replay.
``metrics-server``
    Serve a telemetry directory (``sweep --telemetry-dir``) over HTTP:
    Prometheus text exposition on ``/metrics``, event/snapshot tails as
    NDJSON, a JSON health summary — stdlib only (DESIGN.md §15).
``top``
    Terminal dashboard over the same telemetry directory: top counter /
    gauge / histogram series, per-tenant totals, recent events.

Deliverable output (tables, telemetry, artifact paths) goes to stdout
via :func:`repro.analysis.report.emit`; diagnostics go to stderr through
:mod:`logging` (``--log-level`` adjusts verbosity).
"""

from __future__ import annotations

import argparse
import logging

from repro.analysis.report import emit

log = logging.getLogger("repro.cli")


def _configuration_names() -> tuple[str, ...]:
    """Registered configurations at parser-build time (plugin-aware)."""
    from repro.core.pipelines import configuration_names
    return configuration_names()


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.config import DEFAULT_SYSTEM
    from repro.multicore.area import flumen_mzim_mzis
    from repro.workloads import paper_workloads

    cfg = DEFAULT_SYSTEM
    emit(format_table(
        ["quantity", "value"],
        [["cores", cfg.core.count],
         ["chiplets", cfg.chiplets],
         ["MZIM ports", cfg.mzim_ports],
         ["MZIM MZIs", flumen_mzim_mzis(cfg.mzim_ports)],
         ["photonic link", f"{cfg.phot_link.bandwidth_bps / 1e9:.0f} Gbps"],
         ["compute wavelengths", cfg.compute.computation_wavelengths],
         ["scheduler (tau, eta, zeta)",
          f"({cfg.scheduler.tau_cycles}, {cfg.scheduler.eta}, "
          f"{cfg.scheduler.zeta})"]],
        title="Flumen reproduction — system configuration"))
    rows = [[wl.name, f"{wl.total_macs():,}",
             len(wl.phases()), f"{wl.extra_core_ops():,}"]
            for wl in paper_workloads()]
    emit()
    emit(format_table(["workload", "MACs", "phases", "core-side ops"],
                      rows, title="Workloads (paper shapes)"))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.noc.simulation import SweepConfig, load_sweep

    cfg = SweepConfig(cycles=args.cycles, warmup=args.cycles // 3)
    loads = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    results = load_sweep(args.topology, args.pattern, loads, cfg)
    rows = [[r.load, f"{r.avg_latency:.1f}", f"{r.latency.p99:.1f}",
             "saturated" if r.saturated else ""] for r in results]
    emit(format_table(
        ["load", "avg latency", "p99", ""],
        rows, title=f"{args.topology} / {args.pattern}"))
    return 0


def _cmd_compute(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.photonics.compute_energy import MZIMComputeModel

    model = MZIMComputeModel()
    rows = []
    for n in (8, 16, 32, 64):
        for m in (1, 4, 8):
            phot = model.matmul_energy(n, m).total
            elec = model.electrical_matmul_energy(n, m)
            rows.append([f"{n}x{n}", m, f"{phot * 1e12:.1f}",
                         f"{elec * 1e12:.1f}", f"{elec / phot:.1f}x"])
    emit(format_table(
        ["MZIM", "vectors", "photonic (pJ)", "electrical (pJ)",
         "advantage"],
        rows, title="Compute energy (Figure 12b model)"))
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.core.system import SystemModel
    from repro.workloads import paper_workloads

    workloads = {wl.name: wl for wl in paper_workloads()}
    if args.workload not in workloads:
        log.error("unknown workload %r; choose from %s",
                  args.workload, sorted(workloads))
        return 2
    runs = SystemModel().run_all(workloads[args.workload])
    rows = [[cfg, f"{r.runtime_s * 1e6:.1f}",
             f"{r.energy.total * 1e6:.1f}", f"{r.edp * 1e9:.3f}"]
            for cfg, r in runs.items()]
    emit(format_table(
        ["config", "runtime (us)", "energy (uJ)", "EDP (nJ*s)"],
        rows, title=f"System model: {args.workload}"))
    mesh, fa = runs["mesh"], runs["flumen_a"]
    emit(f"\nFlumen-A vs Mesh: {mesh.runtime_s / fa.runtime_s:.2f}x "
         f"speedup, {mesh.energy.total / fa.energy.total:.2f}x energy, "
         f"{mesh.edp / fa.edp:.2f}x EDP")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.multicore.area import AreaModel

    area = AreaModel()
    emit(format_table(
        ["component", "mm^2"],
        [["Flumen endpoint", f"{area.flumen_endpoint().total:.2f}"],
         ["8x8 MZIM + controller",
          f"{area.mzim_with_controller():.2f}"],
         ["Flumen system", f"{area.flumen_system().total:.1f}"],
         ["Mesh system", f"{area.mesh_system().total:.1f}"]],
        title="Area (Section 5.1)"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.engine import (
        PointSpec,
        ResultCache,
        SweepEngine,
    )
    from repro.analysis.report import format_table
    from repro.core.pipelines import configuration_names
    from repro.workloads import paper_workloads

    if args.jobs < 1:
        log.error("--jobs must be >= 1, got %d", args.jobs)
        return 2

    from repro.photonics.registry import registered_meshes

    known_meshes = registered_meshes()
    meshes = list(dict.fromkeys(args.mesh or []))
    for mesh in meshes:
        if mesh not in known_meshes:
            log.error("unknown mesh architecture %r; choose from %s",
                      mesh, list(known_meshes))
            return 2

    shapes = "small" if args.small else "paper"
    if args.task == "mesh_comparison":
        # Architecture grid: one point per registered (or selected)
        # mesh arrangement, all hit with the same seeded target and
        # fault doses (DESIGN.md §16).
        points = [PointSpec(key=f"mesh/{mesh}",
                            params={"architecture": mesh})
                  for mesh in (meshes or list(known_meshes))]
    else:
        known_workloads = [wl.name for wl in paper_workloads()]
        known_configs = configuration_names()
        workloads = list(dict.fromkeys(args.workloads or known_workloads))
        configs = list(dict.fromkeys(args.configs or known_configs))
        for name in workloads:
            if name not in known_workloads:
                log.error("unknown workload %r; choose from %s",
                          name, known_workloads)
                return 2
        for cfg in configs:
            if cfg not in known_configs:
                log.error("unknown configuration %r; choose from %s",
                          cfg, list(known_configs))
                return 2
        points = []
        for wl in workloads:
            for cfg in configs:
                # No --mesh keeps the exact pre-registry keys/params, so
                # existing sweep caches and the CI byte-compares stay
                # valid.
                if not meshes:
                    points.append(PointSpec(
                        key=f"{wl}/{cfg}",
                        params={"workload": wl, "configuration": cfg,
                                "shapes": shapes}))
                    continue
                for mesh in meshes:
                    points.append(PointSpec(
                        key=f"{wl}/{cfg}/{mesh}",
                        params={"workload": wl, "configuration": cfg,
                                "shapes": shapes,
                                "mesh_architecture": mesh}))
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    if args.progress and log.getEffectiveLevel() > logging.INFO:
        log.setLevel(logging.INFO)

    def progress(done: int, total: int, result) -> None:
        origin = "cache" if result.from_cache else (
            "ok" if result.ok else "FAILED")
        log.info("[%d/%d] %s: %s", done, total, result.key, origin)

    from repro.obs import NULL_OBS, Obs

    obs = Obs.telemetry() if args.telemetry_dir else NULL_OBS
    engine = SweepEngine(jobs=args.jobs, cache=cache,
                         progress=progress if args.progress else None,
                         obs=obs)
    run = engine.run(args.task, points, base_seed=args.seed)

    if args.task == "mesh_comparison":
        rows = [[r.metrics["architecture"],
                 f"{r.metrics['measured_columns']:.0f}",
                 f"{r.metrics['device_count']:.0f}",
                 f"{r.metrics['passes']:.0f}",
                 f"{r.metrics['drift_error']:.3f}",
                 f"{r.metrics['recalibrated_error']:.2e}",
                 f"{r.metrics['stuck_error']:.3f}",
                 f"{r.metrics['energy_per_mac_j'] * 1e12:.3f}"]
                for r in run.ok_results()]
        emit(format_table(
            ["architecture", "depth", "devices", "passes", "drift err",
             "recal err", "stuck err", "pJ/MAC"],
            rows, title=f"Mesh architecture comparison "
                        f"(jobs={args.jobs}, seed={args.seed})"))
    else:
        rows = [[r.metrics["workload"], r.metrics["configuration"],
                 f"{r.metrics['runtime_s'] * 1e6:.1f}",
                 f"{r.metrics['energy_total_j'] * 1e6:.1f}",
                 f"{r.metrics['edp_js'] * 1e9:.3f}"]
                for r in run.ok_results()]
        emit(format_table(
            ["workload", "config", "runtime (us)", "energy (uJ)",
             "EDP (nJ*s)"],
            rows,
            title=f"System sweep ({shapes} shapes, jobs={args.jobs})"))
    for failure in run.failed_results():
        log.error("FAILED %s: %s", failure.key, failure.error)
    emit(f"telemetry: {run.telemetry.summary()}")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(run.records(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"wrote {len(run.results)} records to {args.out}")
    if args.telemetry_dir:
        from repro.obs import write_telemetry_dir

        paths = write_telemetry_dir(args.telemetry_dir, obs)
        emit(f"wrote telemetry ({len(obs.events)} events, "
             f"{len(obs.sampler)} snapshots) to {args.telemetry_dir}: "
             + ", ".join(p.name for p in paths.values()))
    return 1 if run.failed_results() else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.analysis.report import format_table
    from repro.obs import (
        TelemetryServer,
        parse_exposition,
        prometheus_exposition,
        validate_events,
        write_telemetry_dir,
    )
    from repro.serve import LiveTelemetryStore, ServeConfig, ServeDaemon

    config = ServeConfig(
        duration=args.duration, seed=args.seed, arrival=args.arrival,
        rate=args.rate, tenants=args.tenants,
        mvm_fraction=args.mvm_fraction, nodes=args.nodes,
        ports=args.ports, batch_size=args.batch_size,
        batch_window=args.batch_window,
        admission_rate=args.admission_rate,
        admission_burst=args.admission_burst, fault=args.fault,
        fault_magnitude=args.fault_magnitude,
        max_events=args.max_events)
    vectorized = args.loop != "oracle"
    if args.replicas > 1:
        return _cmd_serve_cluster(args, config, vectorized)
    daemon = ServeDaemon(config, vectorized=vectorized)
    server = None
    if args.http_port is not None:
        store = LiveTelemetryStore(
            daemon.obs, daemon=daemon,
            describe=f"serve session seed={config.seed}")
        server = TelemetryServer(store, host=args.host,
                                 port=args.http_port)
        server.start()
        emit(f"live telemetry on http://{args.host}:{server.port}"
             f"/metrics (also /healthz /events /snapshots)")
    try:
        report = daemon.run()
        if server is not None and args.linger > 0:
            emit(f"session over; serving /metrics for {args.linger:g}s "
                 "more (Ctrl-C stops)")
            try:
                time.sleep(args.linger)
            except KeyboardInterrupt:
                pass
    finally:
        if server is not None:
            server.shutdown()

    ledger = report["ledger"]
    rows = []
    for tenant, t in sorted(report["per_tenant"].items()):
        rows.append([tenant, t["offered"], t["admitted"],
                     t["rejected"], t["completed"]])
    emit(format_table(
        ["tenant", "offered", "admitted", "rejected", "completed"],
        rows,
        title=f"serve session: seed={config.seed} "
              f"arrival={config.arrival} rate={config.rate:g} "
              f"({report['cycles']} cycles)"))
    emit()
    lat = report["latency"]
    lat_rows = []
    for kind in ("mvm", "comm"):
        p = lat[kind]
        lat_rows.append([
            kind, p["count"],
            "-" if p["p50"] is None else f"{p['p50']:.0f}",
            "-" if p["p95"] is None else f"{p['p95']:.0f}",
            "-" if p["p99"] is None else f"{p['p99']:.0f}"])
    emit(format_table(
        ["kind", "served", "p50 (cyc)", "p95 (cyc)", "p99 (cyc)"],
        lat_rows, title="request latency"))
    emit()
    emit(f"ledger: offered={ledger['offered']} "
         f"admitted={ledger['admitted']} "
         f"rejected={ledger['rejected']} "
         f"completed={ledger['completed']} "
         f"in_flight={ledger['in_flight']} | "
         f"goodput={report['goodput_per_kcycle']:.1f} req/kcycle | "
         f"final rung {report['final_rung']} "
         f"(electrical={report['electrical_completions']})")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"wrote session report to {args.out}")
    if args.telemetry_dir:
        paths = write_telemetry_dir(args.telemetry_dir, daemon.obs)
        emit(f"wrote telemetry ({len(daemon.obs.events)} events, "
             f"{len(daemon.obs.sampler)} snapshots) to "
             f"{args.telemetry_dir}: "
             + ", ".join(p.name for p in paths.values()))

    if args.check:
        problems = list(validate_events(
            list(daemon.obs.events.events)))
        _, expo_problems = parse_exposition(prometheus_exposition(
            daemon.obs.metrics.to_dict()))
        problems += [f"exposition: {p}" for p in expo_problems]
        if not report["conserved"]:
            problems.append(f"ledger not conserved: {ledger}")
        if not report["drained"]:
            problems.append(
                f"drain incomplete: in_flight={ledger['in_flight']} "
                f"after {config.drain_limit} extra cycles")
        for problem in problems:
            log.error("serve: %s", problem)
        if problems:
            return 1
        emit(f"serve check: ok ({report['events']} events, "
             f"{report['snapshots']} snapshots, ledger conserved, "
             "drained)")
    return 0


def _cmd_serve_cluster(args: argparse.Namespace, config,
                       vectorized: bool) -> int:
    """``repro serve --replicas R``: the replica-sharded serving tier."""
    import json
    import time

    from repro.analysis.report import format_table
    from repro.obs import TelemetryServer, validate_events
    from repro.obs.export import write_metrics_jsonl
    from repro.serve import ClusterTelemetryStore, ReplicaSet

    replica_set = ReplicaSet(config, args.replicas,
                             vectorized=vectorized)
    report = replica_set.run(jobs=args.jobs)

    rows = [[i, ",".join(r["tenants"]), r["cycles"], r["completed"],
             f"{r['goodput_per_kcycle']:.1f}", r["final_rung"]]
            for i, r in enumerate(report["per_replica"])]
    emit(format_table(
        ["replica", "tenants", "cycles", "completed", "goodput", "rung"],
        rows,
        title=f"serve cluster: seed={config.seed} "
              f"replicas={args.replicas} jobs={args.jobs} "
              f"rate={config.rate:g} ({report['cycles']} cycles)"))
    emit()
    rows = []
    for tenant, t in sorted(report["per_tenant"].items()):
        rows.append([tenant, t["offered"], t["admitted"],
                     t["rejected"], t["completed"]])
    emit(format_table(
        ["tenant", "offered", "admitted", "rejected", "completed"],
        rows, title="per-tenant ledger"))
    emit()
    ledger = report["ledger"]
    emit(f"ledger: offered={ledger['offered']} "
         f"admitted={ledger['admitted']} "
         f"rejected={ledger['rejected']} "
         f"completed={ledger['completed']} "
         f"in_flight={ledger['in_flight']} | "
         f"goodput={report['goodput_per_kcycle']:.1f} req/kcycle | "
         f"{report['events']} merged events, "
         f"{report['snapshots']} merged snapshots")

    store = ClusterTelemetryStore(
        replica_set,
        describe=f"serve cluster seed={config.seed} "
                 f"replicas={args.replicas}")
    if args.http_port is not None:
        server = TelemetryServer(store, host=args.host,
                                 port=args.http_port)
        server.start()
        emit(f"merged telemetry on http://{args.host}:{server.port}"
             f"/metrics (also /healthz /events /snapshots)")
        try:
            if args.linger > 0:
                emit(f"serving the merged view for {args.linger:g}s "
                     "(Ctrl-C stops)")
                try:
                    time.sleep(args.linger)
                except KeyboardInterrupt:
                    pass
        finally:
            server.shutdown()

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"wrote cluster report to {args.out}")
    if args.telemetry_dir:
        from pathlib import Path

        root = Path(args.telemetry_dir)
        root.mkdir(parents=True, exist_ok=True)
        write_metrics_jsonl(root / "events.jsonl",
                            replica_set.merged_events)
        write_metrics_jsonl(root / "snapshots.jsonl",
                            replica_set.merged_snapshots)
        (root / "metrics.prom").write_text(store.exposition())
        emit(f"wrote merged telemetry ({report['events']} events, "
             f"{report['snapshots']} snapshots) to {root}")

    if args.check:
        problems = list(validate_events(replica_set.merged_events))
        if not report["conserved"]:
            problems.append(f"ledger not conserved: {ledger}")
        if not report["drained"]:
            problems.append(
                f"drain incomplete: in_flight={ledger['in_flight']}")
        if args.jobs > 1:
            # The cluster's execution-invariance contract: a process
            # pool must be byte-identical to the sequential oracle.
            oracle = ReplicaSet(config, args.replicas,
                                vectorized=vectorized)
            oracle.run(jobs=1)
            if oracle.per_tenant_streams() \
                    != replica_set.per_tenant_streams():
                problems.append(
                    "per-tenant event streams differ between the "
                    "process pool and the sequential oracle")
            if json.dumps(oracle.report(), sort_keys=True) \
                    != json.dumps(report, sort_keys=True):
                problems.append(
                    "cluster report differs between the process pool "
                    "and the sequential oracle")
        for problem in problems:
            log.error("serve cluster: %s", problem)
        if problems:
            return 1
        emit(f"serve cluster check: ok ({report['events']} merged "
             f"events, {report['snapshots']} merged snapshots, ledger "
             "conserved, drained"
             + (", pool == sequential oracle)" if args.jobs > 1
                else ")"))
    return 0


def _cmd_metrics_server(args: argparse.Namespace) -> int:
    from repro.obs import (
        TelemetryServer,
        TelemetryStore,
        load_and_validate_events,
        parse_exposition,
    )
    from repro.obs.telemetry import EVENTS_FILE

    store = TelemetryStore(args.dir)
    if args.check:
        problems = list(load_and_validate_events(
            store.root / EVENTS_FILE))
        _, expo_problems = parse_exposition(store.exposition())
        problems += [f"exposition: {p}" for p in expo_problems]
        for problem in problems:
            log.error("telemetry: %s", problem)
        if problems:
            return 1
        health = store.health()
        emit(f"telemetry check: ok ({health['events']} events, "
             f"{health['snapshots']} snapshots)")
        return 0
    if args.once:
        emit(store.exposition(), end="")
        return 0
    with TelemetryServer(store, host=args.host,
                         port=args.port) as server:
        emit(f"serving telemetry from {store.root} on "
             f"http://{args.host}:{server.port}/metrics "
             f"(also /healthz /events /snapshots; Ctrl-C stops)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from repro.obs import TelemetryStore, render_top

    store = TelemetryStore(args.dir)
    frames = args.frames if args.follow else 1
    rendered = 0
    while frames is None or rendered < frames:
        frame = render_top(store, top_n=args.top,
                           events_tail=args.events)
        if args.follow:
            # ANSI clear + home, so the dashboard repaints in place.
            emit("\x1b[2J\x1b[H", end="")
        emit(frame)
        rendered += 1
        if frames is not None and rendered >= frames:
            break
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import format_table
    from repro.analysis.trace import trace_workload
    from repro.obs import (
        validate_chrome_trace,
        write_chrome_trace,
        write_metrics_jsonl,
    )

    if args.mesh is not None:
        from repro.photonics.registry import registered_meshes
        if args.mesh not in registered_meshes():
            log.error("unknown mesh architecture %r; choose from %s",
                      args.mesh, list(registered_meshes()))
            return 2

    shapes = "small" if args.small else "paper"
    log.info("tracing %s under %s (%s shapes, seed=%d)",
             args.workload, args.config, shapes, args.seed)
    trace = trace_workload(args.workload, configuration=args.config,
                           shapes=shapes, traffic_seed=args.seed,
                           mesh_architecture=args.mesh)

    coverage = trace.layer_coverage()
    emit(format_table(
        ["layer", "events"],
        [[layer, count] for layer, count in coverage.items()],
        title=f"Trace: {args.workload}/{args.config} ({shapes} shapes)"))

    out = Path(args.out)
    write_chrome_trace(out, trace.obs.tracer,
                       other_data=trace.other_data())
    metrics_out = (Path(args.metrics_out) if args.metrics_out
                   else out.with_suffix(".metrics.jsonl"))
    write_metrics_jsonl(metrics_out, [trace.metrics_snapshot()])
    emit(f"wrote trace: {out} ({len(trace.obs.tracer.events)} events)")
    emit(f"wrote metrics: {metrics_out}")

    missing = trace.missing_layers()
    if missing:
        log.warning("layers with no events: %s", ", ".join(missing))
    if args.check:
        problems = validate_chrome_trace(trace.payload())
        for problem in problems:
            log.error("schema: %s", problem)
        if problems or missing:
            return 1
        emit("schema check: ok")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.engine import PointSpec, ResultCache, SweepEngine
    from repro.analysis.export import to_csv
    from repro.analysis.report import format_table
    from repro.faults.campaign import campaign_fault_kinds, csv_records

    if args.jobs < 1:
        log.error("--jobs must be >= 1, got %d", args.jobs)
        return 2
    known = campaign_fault_kinds()
    faults = list(dict.fromkeys(args.fault or known))
    for kind in faults:
        if kind not in known:
            log.error("unknown fault kind %r; choose from %s",
                      kind, list(known))
            return 2
    from repro.photonics.registry import registered_meshes
    if args.mesh not in registered_meshes():
        log.error("unknown mesh architecture %r; choose from %s",
                  args.mesh, list(registered_meshes()))
        return 2

    points = []
    for kind in faults:
        # The zero-fault control ignores magnitude; run it once.
        magnitudes = [1.0] if kind == "none" else \
            list(dict.fromkeys(args.magnitudes))
        for magnitude in magnitudes:
            params = {"fault": kind, "magnitude": float(magnitude),
                      "runs": args.runs, "cycles": args.cycles,
                      "golden_reference": not args.no_golden,
                      "mesh_architecture": args.mesh}
            key = f"{kind}/m{magnitude:g}"
            if args.mesh != "clements":
                key += f"/{args.mesh}"
            points.append(PointSpec(key=key, params=params))
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    engine = SweepEngine(jobs=args.jobs, cache=cache)
    run = engine.run("fault_point", points, base_seed=args.seed)

    rows = []
    for result in run.ok_results():
        spec, agg = result.metrics["spec"], result.metrics["aggregate"]
        rungs = ",".join(f"{k}:{v}" for k, v in
                         sorted(agg["final_rungs"].items()))
        detect = agg["mean_detection_latency"]
        rows.append([
            spec["fault"], f"{spec['magnitude']:g}",
            f"{agg['recovery_rate'] * 100:.0f}%",
            "-" if detect is None else f"{detect:.0f}",
            f"{agg['mean_enob_loss_bits']:.2f}",
            f"{agg['mean_runtime_overhead_fraction'] * 100:.1f}%",
            f"{agg['mean_energy_overhead_j'] * 1e9:.2f}",
            rungs])
    emit(format_table(
        ["fault", "mag", "recovered", "detect (cyc)", "ENOB loss",
         "runtime ovh", "energy (nJ)", "final rungs"],
        rows, title=f"Fault campaigns (runs={args.runs}, "
                    f"cycles={args.cycles}, seed={args.seed})"))
    for failure in run.failed_results():
        log.error("FAILED %s: %s", failure.key, failure.error)
    golden = [r for r in run.ok_results()
              if "golden_reference" in r.metrics]
    if golden:
        emit("zero-fault control carries the golden-numbers "
             "cross-check (see 'golden_reference' in the artifact)")
    emit(f"telemetry: {run.telemetry.summary()}")

    if args.out:
        with open(args.out, "w") as handle:
            json.dump(run.records(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        emit(f"wrote {len(run.results)} campaign records to {args.out}")
    if args.csv:
        campaigns = [r.metrics for r in run.ok_results()]
        with open(args.csv, "w") as handle:
            handle.write(to_csv(csv_records(campaigns)))
        emit(f"wrote per-run CSV to {args.csv}")
    return 1 if run.failed_results() else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis import perf
    from repro.analysis.report import format_table

    if args.tolerance <= 0:
        log.error("--tolerance must be > 0, got %g", args.tolerance)
        return 2
    only = args.only
    if args.mesh is not None:
        from repro.photonics.registry import registered_meshes
        if args.mesh not in registered_meshes():
            log.error("unknown mesh architecture %r; choose from %s",
                      args.mesh, list(registered_meshes()))
            return 2
        if only is None:
            only = f"mesh_depth/{args.mesh}"

    def progress(name: str) -> None:
        log.info("running %s", name)

    payload = perf.run_suite(small=args.small, only=only,
                             progress=progress)
    if not payload["benchmarks"]:
        log.error("no benchmarks matched --only %r", only)
        return 2

    rows = []
    for name, record in payload["benchmarks"].items():
        speedup = record.get("speedup_vs_reference")
        per_call = record.get("per_call_s")
        rows.append([
            name, f"{record['wall_s']:.3f}",
            "-" if per_call is None else f"{per_call * 1e3:.3f}",
            "-" if speedup is None else f"{speedup:.1f}x",
            (record.get("digest") or "")[:12]])
    emit(format_table(
        ["benchmark", "wall (s)", "per call (ms)", "vs reference",
         "digest"],
        rows, title=f"Perf suite ({payload['suite']}, "
                    f"rev {payload['rev']})"))

    out = args.out or perf.default_artifact_path()
    perf.write_artifact(payload, out)
    emit(f"wrote {out}")

    def write_summary(delta_rows=None, baseline_rev=None) -> None:
        if not args.summary_md:
            return
        markdown = perf.markdown_summary(
            payload, delta_rows, baseline_rev=baseline_rev,
            tolerance=None if delta_rows is None else args.tolerance)
        # Append, not overwrite: $GITHUB_STEP_SUMMARY accumulates
        # sections from every step of a job.
        with open(args.summary_md, "a") as handle:
            handle.write(markdown)
        emit(f"appended markdown summary to {args.summary_md}")

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        if args.check:
            log.error("baseline %s not found; cannot --check", baseline_path)
            return 2
        emit(f"no baseline at {baseline_path}; skipping comparison")
        write_summary()
        return 0
    baseline = json.loads(baseline_path.read_text())
    delta_rows, failures = perf.compare_to_baseline(
        payload, baseline, tolerance=args.tolerance)
    emit()
    emit(format_table(
        ["benchmark", "current (s)", "baseline (s)", "ratio", "status"],
        delta_rows,
        title=f"vs {baseline_path} (rev {baseline.get('rev', '?')}, "
              f"tolerance {args.tolerance:g}x)"))
    write_summary(delta_rows, baseline.get("rev", "?"))
    for failure in failures:
        log.error("%s", failure)
    # A supplied baseline is a contract: digest mismatches and blown
    # timing budgets fail the run whether or not --check was passed
    # (--check additionally hard-fails when the baseline is missing).
    if failures:
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Flumen (ISCA 2023) reproduction toolkit")
    parser.add_argument(
        "--log-level", default="warning",
        choices=["debug", "info", "warning", "error"],
        help="diagnostic verbosity on stderr (default: warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="configuration + workload inventory")

    lat = sub.add_parser("latency", help="latency vs load (Figure 11)")
    lat.add_argument("--topology", default="flumen",
                     choices=["ring", "mesh", "optbus", "flumen"])
    lat.add_argument("--pattern", default="uniform")
    lat.add_argument("--cycles", type=int, default=2000)

    sub.add_parser("compute", help="compute energy table (Figure 12b)")

    system = sub.add_parser("system",
                            help="full-system run (Figures 13-15)")
    system.add_argument("--workload", default="rotation3d")

    sub.add_parser("area", help="area report (Section 5.1)")

    swp = sub.add_parser(
        "sweep", help="parallel workload x configuration sweep "
                      "(Figures 13-15 grid)")
    swp.add_argument("--workloads", nargs="+", metavar="NAME",
                     help="workload subset (default: all five)")
    swp.add_argument("--configs", nargs="+", metavar="CFG",
                     help="configuration subset (default: all five)")
    swp.add_argument("--task", default="system_point",
                     choices=["system_point", "mesh_comparison"],
                     help="sweep task: the workload x configuration "
                          "system grid, or the per-mesh-architecture "
                          "accuracy/depth/energy comparison (default: "
                          "system_point)")
    swp.add_argument("--mesh", nargs="+", metavar="ARCH",
                     help="mesh architecture subset (registry names; "
                          "default: the Clements default for "
                          "system_point, every registered arrangement "
                          "for mesh_comparison)")
    swp.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default: 1)")
    swp.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    swp.add_argument("--cache-dir", default=None,
                     help="cache directory (default: $FLUMEN_CACHE_DIR "
                          "or .flumen_cache)")
    swp.add_argument("--small", action="store_true",
                     help="reduced workload shapes (fast smoke runs)")
    swp.add_argument("--seed", type=int, default=17,
                     help="base seed for deterministic per-point seeding")
    swp.add_argument("--out", default=None, metavar="PATH",
                     help="write the metric records as JSON")
    swp.add_argument("--progress", action="store_true",
                     help="log per-point progress to stderr")
    swp.add_argument("--telemetry-dir", default=None, metavar="DIR",
                     help="run with the streaming telemetry bundle and "
                          "write events.jsonl / snapshots.jsonl / "
                          "metrics.prom to DIR (serve with "
                          "'metrics-server --dir DIR')")

    def _arrival_names() -> list[str]:
        from repro.serve import registered_arrivals
        return list(registered_arrivals())

    def _fault_names() -> list[str]:
        from repro.faults import registered_faults
        return list(registered_faults())

    svd = sub.add_parser(
        "serve", help="long-lived serving daemon under live traffic "
                      "(DESIGN.md §17)")
    svd.add_argument("--duration", type=int, default=4096,
                     help="cycles of the serving phase (default: 4096); "
                          "draining afterwards runs until every "
                          "admitted request completes")
    svd.add_argument("--seed", type=int, default=0,
                     help="session seed; same seed -> byte-identical "
                          "events, snapshots, exposition, and report")
    svd.add_argument("--arrival", default="poisson",
                     choices=_arrival_names(),
                     help="arrival process shaping offered load "
                          "(default: poisson)")
    svd.add_argument("--rate", type=float, default=0.05,
                     help="mean offered requests per tenant per cycle "
                          "at intensity 1.0 (default: 0.05)")
    svd.add_argument("--tenants", type=int, default=3,
                     help="independent client populations (default: 3)")
    svd.add_argument("--mvm-fraction", type=float, default=0.5,
                     help="fraction of requests that are MVM offloads; "
                          "the rest are interposer packets "
                          "(default: 0.5)")
    svd.add_argument("--nodes", type=int, default=16,
                     help="interposer nodes (default: 16)")
    svd.add_argument("--ports", type=int, default=8,
                     help="photonic fabric ports (default: 8)")
    svd.add_argument("--batch-size", type=int, default=8,
                     help="close a tenant batch at this many requests "
                          "(default: 8)")
    svd.add_argument("--batch-window", type=int, default=64,
                     help="or when its oldest request has waited this "
                          "many cycles (default: 64)")
    svd.add_argument("--admission-rate", type=float, default=0.12,
                     help="token-bucket refill per tenant, requests "
                          "per cycle (default: 0.12)")
    svd.add_argument("--admission-burst", type=float, default=24.0,
                     help="token-bucket depth in requests "
                          "(default: 24)")
    svd.add_argument("--fault", default=None, choices=_fault_names(),
                     help="inject one seeded fault mid-session "
                          "(default: fault-free)")
    svd.add_argument("--fault-magnitude", type=float, default=1.0,
                     help="fault severity multiplier (default: 1.0)")
    svd.add_argument("--max-events", type=int, default=None,
                     metavar="N",
                     help="bound the in-memory event log (default: "
                          "unbounded)")
    svd.add_argument("--replicas", type=int, default=1, metavar="R",
                     help="shard tenants across R independent fabric "
                          "replicas (default: 1, the single daemon); "
                          "per-tenant streams are byte-identical to "
                          "the unsharded session's")
    svd.add_argument("--jobs", type=int, default=1, metavar="J",
                     help="run replicas across a J-worker process "
                          "pool (default: 1, sequential; results are "
                          "byte-identical either way)")
    svd.add_argument("--loop", default="vectorized",
                     choices=("vectorized", "oracle"),
                     help="serve hot-loop implementation: the "
                          "vectorized fast path (default) or the "
                          "per-cycle oracle it is verified against")
    svd.add_argument("--out", default=None, metavar="PATH",
                     help="write the session report as canonical JSON")
    svd.add_argument("--telemetry-dir", default=None, metavar="DIR",
                     help="write events.jsonl / snapshots.jsonl / "
                          "metrics.prom to DIR after the session")
    svd.add_argument("--check", action="store_true",
                     help="validate the event log, exposition, ledger "
                          "conservation, and drain; nonzero exit on "
                          "problems")
    svd.add_argument("--http-port", type=int, default=None,
                     metavar="PORT",
                     help="serve live /metrics //healthz while the "
                          "session runs (0 picks a free port; default: "
                          "no HTTP)")
    svd.add_argument("--host", default="127.0.0.1",
                     help="bind address for --http-port (default: "
                          "127.0.0.1)")
    svd.add_argument("--linger", type=float, default=0.0,
                     metavar="SECONDS",
                     help="keep the HTTP endpoint up this long after "
                          "the session ends (default: 0)")

    srv = sub.add_parser(
        "metrics-server",
        help="serve a telemetry directory over HTTP: /metrics "
             "(Prometheus text format), /healthz, /events, /snapshots "
             "(DESIGN.md §15)")
    srv.add_argument("--dir", default="telemetry", metavar="DIR",
                     help="telemetry directory to serve (default: "
                          "telemetry)")
    srv.add_argument("--host", default="127.0.0.1",
                     help="bind address (default: 127.0.0.1)")
    srv.add_argument("--port", type=int, default=9109,
                     help="bind port; 0 picks a free one (default: 9109)")
    srv.add_argument("--check", action="store_true",
                     help="validate the event log and exposition, then "
                          "exit (nonzero on problems)")
    srv.add_argument("--once", action="store_true",
                     help="print the exposition to stdout and exit "
                          "(no server)")

    top = sub.add_parser(
        "top", help="terminal dashboard over a telemetry directory")
    top.add_argument("--dir", default="telemetry", metavar="DIR",
                     help="telemetry directory to read (default: "
                          "telemetry)")
    top.add_argument("--follow", action="store_true",
                     help="repaint continuously instead of one frame")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between repaints with --follow "
                          "(default: 2.0)")
    top.add_argument("--frames", type=int, default=None, metavar="N",
                     help="stop after N repaints with --follow "
                          "(default: run until Ctrl-C)")
    top.add_argument("--top", type=int, default=10, metavar="N",
                     help="series shown per section (default: 10)")
    top.add_argument("--events", type=int, default=8, metavar="N",
                     help="recent events shown (default: 8)")

    trc = sub.add_parser(
        "trace", help="instrumented run -> Chrome trace JSON "
                      "(Perfetto-loadable) + metrics JSONL")
    trc.add_argument("workload", nargs="?", default="rotation3d",
                     help="workload name (default: rotation3d)")
    trc.add_argument("--config", default="flumen_a",
                     choices=list(_configuration_names()),
                     help="configuration to trace (default: flumen_a, "
                          "the only one exercising all five layers)")
    trc.add_argument("--small", action="store_true",
                     help="reduced workload shapes (fast smoke runs)")
    trc.add_argument("--seed", type=int, default=17,
                     help="traffic seed (same seed -> identical trace)")
    trc.add_argument("--out", default="trace.json", metavar="PATH",
                     help="trace output path (default: trace.json)")
    trc.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="metrics JSONL path (default: derived from "
                          "--out)")
    trc.add_argument("--check", action="store_true",
                     help="schema-check the emitted trace; nonzero exit "
                          "on problems or missing layers")
    trc.add_argument("--mesh", default=None, metavar="ARCH",
                     help="mesh architecture for the fabric mirror "
                          "(registry name; default: clements)")

    flt = sub.add_parser(
        "faults", help="fault-injection campaigns with graceful "
                       "degradation (DESIGN.md §12)")
    flt.add_argument("--fault", nargs="+", metavar="KIND",
                     help="fault kinds to campaign (default: every "
                          "registered kind plus the 'none' control)")
    flt.add_argument("--magnitudes", nargs="+", type=float, default=[1.0],
                     metavar="M", help="fault severity multipliers "
                                       "(default: 1.0)")
    flt.add_argument("--runs", type=int, default=3,
                     help="seeded runs per (fault, magnitude) point "
                          "(default: 3)")
    flt.add_argument("--cycles", type=int, default=1200,
                     help="simulated cycles per run (default: 1200)")
    flt.add_argument("--seed", type=int, default=0,
                     help="base seed; same seed -> byte-identical "
                          "artifacts")
    flt.add_argument("--jobs", type=int, default=1,
                     help="worker processes (default: 1)")
    flt.add_argument("--no-cache", action="store_true",
                     help="bypass the on-disk result cache")
    flt.add_argument("--cache-dir", default=None,
                     help="cache directory (default: $FLUMEN_CACHE_DIR "
                          "or .flumen_cache)")
    flt.add_argument("--no-golden", action="store_true",
                     help="skip the golden-numbers cross-check on the "
                          "zero-fault control")
    flt.add_argument("--out", default=None, metavar="PATH",
                     help="write campaign records as JSON")
    flt.add_argument("--csv", default=None, metavar="PATH",
                     help="write flattened per-run rows as CSV")
    flt.add_argument("--mesh", default="clements", metavar="ARCH",
                     help="mesh architecture the compute partition "
                          "under test is decomposed with (default: "
                          "clements)")

    prf = sub.add_parser(
        "perf", help="pinned performance suite -> BENCH_<rev>.json, "
                     "with baseline comparison (DESIGN.md §13)")
    prf.add_argument("--small", action="store_true",
                     help="CI subset (a strict subset of the full "
                          "suite; a full-suite baseline covers it)")
    prf.add_argument("--only", default=None, metavar="PREFIX",
                     help="run only benchmarks whose name starts with "
                          "PREFIX")
    prf.add_argument("--out", default=None, metavar="PATH",
                     help="artifact path (default: BENCH_<rev>.json)")
    prf.add_argument("--baseline", default="BENCH_baseline.json",
                     metavar="PATH",
                     help="baseline to compare against (default: "
                          "BENCH_baseline.json; skipped if missing "
                          "unless --check)")
    prf.add_argument("--check", action="store_true",
                     help="require the baseline to exist (digest "
                          "mismatches and blown timing budgets always "
                          "exit nonzero when a baseline is compared)")
    prf.add_argument("--tolerance", type=float, default=2.0,
                     help="allowed wall-clock ratio vs baseline "
                          "(default: 2.0; digests are always strict)")
    prf.add_argument("--summary-md", default=None, metavar="PATH",
                     help="append a markdown report (suite table + "
                          "baseline trend) to PATH — in CI, pass "
                          "\"$GITHUB_STEP_SUMMARY\"")
    prf.add_argument("--mesh", default=None, metavar="ARCH",
                     help="run only the mesh_depth benchmark of one "
                          "architecture (shorthand for --only "
                          "mesh_depth/ARCH)")

    args = parser.parse_args(argv)
    logging.basicConfig(
        level=getattr(logging, args.log_level.upper()),
        format="%(levelname)s %(name)s: %(message)s")
    handler = {
        "info": _cmd_info,
        "latency": _cmd_latency,
        "compute": _cmd_compute,
        "system": _cmd_system,
        "area": _cmd_area,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "trace": _cmd_trace,
        "faults": _cmd_faults,
        "perf": _cmd_perf,
        "metrics-server": _cmd_metrics_server,
        "top": _cmd_top,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
