"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Library inventory: configuration, fabric structure, workload shapes.
``latency``
    Figure 11-style latency/load table for one topology + pattern.
``compute``
    Figure 12(b)-style photonic-vs-electrical compute energy table.
``system``
    Run one workload through all five configurations (Figures 13-15 row).
``area``
    Section 5.1 area report.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.config import DEFAULT_SYSTEM
    from repro.multicore.area import flumen_mzim_mzis
    from repro.workloads import paper_workloads

    cfg = DEFAULT_SYSTEM
    print(format_table(
        ["quantity", "value"],
        [["cores", cfg.core.count],
         ["chiplets", cfg.chiplets],
         ["MZIM ports", cfg.mzim_ports],
         ["MZIM MZIs", flumen_mzim_mzis(cfg.mzim_ports)],
         ["photonic link", f"{cfg.phot_link.bandwidth_bps / 1e9:.0f} Gbps"],
         ["compute wavelengths", cfg.compute.computation_wavelengths],
         ["scheduler (tau, eta, zeta)",
          f"({cfg.scheduler.tau_cycles}, {cfg.scheduler.eta}, "
          f"{cfg.scheduler.zeta})"]],
        title="Flumen reproduction — system configuration"))
    rows = [[wl.name, f"{wl.total_macs():,}",
             len(wl.phases()), f"{wl.extra_core_ops():,}"]
            for wl in paper_workloads()]
    print()
    print(format_table(["workload", "MACs", "phases", "core-side ops"],
                       rows, title="Workloads (paper shapes)"))
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.noc.simulation import SweepConfig, load_sweep

    cfg = SweepConfig(cycles=args.cycles, warmup=args.cycles // 3)
    loads = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    results = load_sweep(args.topology, args.pattern, loads, cfg)
    rows = [[r.load, f"{r.avg_latency:.1f}", f"{r.latency.p99:.1f}",
             "saturated" if r.saturated else ""] for r in results]
    print(format_table(
        ["load", "avg latency", "p99", ""],
        rows, title=f"{args.topology} / {args.pattern}"))
    return 0


def _cmd_compute(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.photonics.compute_energy import MZIMComputeModel

    model = MZIMComputeModel()
    rows = []
    for n in (8, 16, 32, 64):
        for m in (1, 4, 8):
            phot = model.matmul_energy(n, m).total
            elec = model.electrical_matmul_energy(n, m)
            rows.append([f"{n}x{n}", m, f"{phot * 1e12:.1f}",
                         f"{elec * 1e12:.1f}", f"{elec / phot:.1f}x"])
    print(format_table(
        ["MZIM", "vectors", "photonic (pJ)", "electrical (pJ)",
         "advantage"],
        rows, title="Compute energy (Figure 12b model)"))
    return 0


def _cmd_system(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.core.system import SystemModel
    from repro.workloads import paper_workloads

    workloads = {wl.name: wl for wl in paper_workloads()}
    if args.workload not in workloads:
        print(f"unknown workload {args.workload!r}; "
              f"choose from {sorted(workloads)}", file=sys.stderr)
        return 2
    runs = SystemModel().run_all(workloads[args.workload])
    rows = [[cfg, f"{r.runtime_s * 1e6:.1f}",
             f"{r.energy.total * 1e6:.1f}", f"{r.edp * 1e9:.3f}"]
            for cfg, r in runs.items()]
    print(format_table(
        ["config", "runtime (us)", "energy (uJ)", "EDP (nJ*s)"],
        rows, title=f"System model: {args.workload}"))
    mesh, fa = runs["mesh"], runs["flumen_a"]
    print(f"\nFlumen-A vs Mesh: {mesh.runtime_s / fa.runtime_s:.2f}x "
          f"speedup, {mesh.energy.total / fa.energy.total:.2f}x energy, "
          f"{mesh.edp / fa.edp:.2f}x EDP")
    return 0


def _cmd_area(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.multicore.area import AreaModel

    area = AreaModel()
    print(format_table(
        ["component", "mm^2"],
        [["Flumen endpoint", f"{area.flumen_endpoint().total:.2f}"],
         ["8x8 MZIM + controller",
          f"{area.mzim_with_controller():.2f}"],
         ["Flumen system", f"{area.flumen_system().total:.1f}"],
         ["Mesh system", f"{area.mesh_system().total:.1f}"]],
        title="Area (Section 5.1)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Flumen (ISCA 2023) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="configuration + workload inventory")

    lat = sub.add_parser("latency", help="latency vs load (Figure 11)")
    lat.add_argument("--topology", default="flumen",
                     choices=["ring", "mesh", "optbus", "flumen"])
    lat.add_argument("--pattern", default="uniform")
    lat.add_argument("--cycles", type=int, default=2000)

    sub.add_parser("compute", help="compute energy table (Figure 12b)")

    system = sub.add_parser("system",
                            help="full-system run (Figures 13-15)")
    system.add_argument("--workload", default="rotation3d")

    sub.add_parser("area", help="area report (Section 5.1)")

    args = parser.parse_args(argv)
    handler = {
        "info": _cmd_info,
        "latency": _cmd_latency,
        "compute": _cmd_compute,
        "system": _cmd_system,
        "area": _cmd_area,
    }[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
