"""VGG16 FC benchmark: the FC-1000 layer of an 8-bit quantized VGG16.

Section 4.2: a 4096-element input vector multiplied by a (1000 x 4096)
weight matrix plus a 1000-element bias — approximately 4.1 million MACs.
The weight matrix lives in the MZIM; the input activations are the optical
inputs.  Low operand reuse (each weight used once) makes this the
worst-scaling benchmark (Section 5.4.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import BlockMatmul
from repro.workloads.base import MatmulPhase, Workload


def quantized_weights(rows: int, cols: int, seed: int = 23) -> np.ndarray:
    """Synthetic 8-bit quantized weights in [-127, 127] / 127."""
    rng = np.random.default_rng(seed)
    return rng.integers(-127, 128, size=(rows, cols)).astype(float) / 127.0


class VGG16FC(Workload):
    """The FC-1000 layer as a single large MVM."""

    name = "vgg16_fc"

    def __init__(self, outputs: int = 1000, inputs: int = 4096,
                 seed: int = 23) -> None:
        self.weights = quantized_weights(outputs, inputs, seed)
        self.bias = quantized_weights(outputs, 1, seed + 1).ravel()
        rng = np.random.default_rng(seed + 2)
        self.activations = rng.integers(
            0, 128, size=inputs).astype(float) / 127.0
        self.outputs, self.inputs = outputs, inputs

    def phases(self) -> list[MatmulPhase]:
        return [MatmulPhase(
            name="fc1000",
            rows=self.outputs,
            cols=self.inputs,
            vectors=1,
            weight_reuse=1,
        )]

    def extra_core_ops(self) -> int:
        # Bias add + activation quantize/store per output.
        return self.outputs * 3

    def reference(self) -> np.ndarray:
        return self.weights @ self.activations + self.bias

    def photonic(self, mzim_size: int = 8, wavelengths: int = 8
                 ) -> np.ndarray:
        matmul = BlockMatmul(self.weights, mzim_size, wavelengths)
        return matmul(self.activations) + self.bias

    def block_matmuls(self, mzim_size: int = 8,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        phase = self.phases()[0]
        return {self.matrix_key(phase): BlockMatmul(
            self.weights, mzim_size, wavelengths)}
