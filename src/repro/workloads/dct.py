"""8x8 discrete cosine transform as matrix multiplication.

The 2-D DCT of a block ``X`` is ``D @ X @ D.T`` with the orthonormal DCT-II
matrix ``D`` — two 8x8 matrix multiplications, which is how JPEG maps onto
the MZIM (the DCT matrix is orthogonal, so it fits the full 8-input
*unitary* MZIM without the Sigma column, Section 5.4.1).
"""

from __future__ import annotations

import math

import numpy as np


def dct_matrix(n: int = 8) -> np.ndarray:
    """Orthonormal DCT-II matrix: ``D @ D.T == I``."""
    d = np.empty((n, n))
    for k in range(n):
        scale = math.sqrt(1.0 / n) if k == 0 else math.sqrt(2.0 / n)
        for i in range(n):
            d[k, i] = scale * math.cos(math.pi * (2 * i + 1) * k / (2 * n))
    return d


def dct2(block: np.ndarray) -> np.ndarray:
    """2-D DCT of one (or a stack of) 8x8 block(s)."""
    d = dct_matrix(block.shape[-1])
    return d @ block @ d.T


def idct2(coeffs: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (orthonormal, so the transpose inverts)."""
    d = dct_matrix(coeffs.shape[-1])
    return d.T @ coeffs @ d


def blocks_from_plane(plane: np.ndarray, block: int = 8) -> np.ndarray:
    """Split a (H, W) plane into a (num_blocks, block, block) stack.

    H and W must be multiples of ``block``.
    """
    h, w = plane.shape
    if h % block or w % block:
        raise ValueError(f"plane {plane.shape} not divisible into "
                         f"{block}x{block} blocks")
    return (plane.reshape(h // block, block, w // block, block)
            .transpose(0, 2, 1, 3)
            .reshape(-1, block, block))


def plane_from_blocks(blocks: np.ndarray, height: int,
                      width: int) -> np.ndarray:
    """Inverse of :func:`blocks_from_plane`."""
    b = blocks.shape[-1]
    rows, cols = height // b, width // b
    return (blocks.reshape(rows, cols, b, b)
            .transpose(0, 2, 1, 3)
            .reshape(height, width))
