"""JPEG benchmark: baseline JPEG compression of a 256x384 24-bit image.

Section 4.2: "1536 2-dimensional DCTs ... approximately 1.6 million
multiply-accumulate operations."  The full pipeline is implemented:

1. RGB -> YCbCr color conversion,
2. 8x8 block splitting (luma plane: 256*384/64 = 1536 blocks),
3. 2-D DCT per block — the MZIM-offloaded kernel (two 8x8 matmuls per
   block, Section 5.4.1 maps the DCT matrix onto the full 8-input unitary
   MZIM),
4. quantization with the standard luminance/chrominance tables,
5. zig-zag scan, run-length coding of AC terms, DC differential coding,
6. Huffman-style entropy size accounting (code lengths from a canonical
   table; the bitstream size is what the compression ratio reports).

A decoder (:meth:`JPEGCompressor.decode_plane`) inverts steps 2-5 so tests
can bound reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import BlockMatmul
from repro.workloads.base import MatmulPhase, Workload
from repro.workloads.dct import (
    blocks_from_plane,
    dct_matrix,
    idct2,
    plane_from_blocks,
)
from repro.workloads.image_blur import synthetic_image

#: Standard JPEG luminance quantization table (Annex K).
LUMA_QUANT = np.array([
    [16, 11, 10, 16, 24, 40, 51, 61],
    [12, 12, 14, 19, 26, 58, 60, 55],
    [14, 13, 16, 24, 40, 57, 69, 56],
    [14, 17, 22, 29, 51, 87, 80, 62],
    [18, 22, 37, 56, 68, 109, 103, 77],
    [24, 35, 55, 64, 81, 104, 113, 92],
    [49, 64, 78, 87, 103, 121, 120, 101],
    [72, 92, 95, 98, 112, 100, 103, 99],
], dtype=float)

#: Standard chrominance table (Annex K).
CHROMA_QUANT = np.array([
    [17, 18, 24, 47, 99, 99, 99, 99],
    [18, 21, 26, 66, 99, 99, 99, 99],
    [24, 26, 56, 99, 99, 99, 99, 99],
    [47, 66, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
    [99, 99, 99, 99, 99, 99, 99, 99],
], dtype=float)


def zigzag_order(n: int = 8) -> np.ndarray:
    """Index order of the zig-zag scan over an n x n block."""
    order = sorted(((i + j, (i if (i + j) % 2 else j), i, j)
                    for i in range(n) for j in range(n)))
    return np.array([i * n + j for _, _, i, j in order])


ZIGZAG = zigzag_order(8)


def rgb_to_ycbcr(image: np.ndarray) -> np.ndarray:
    """ITU-R BT.601 color conversion (inputs 0..255)."""
    r, g, b = image[..., 0], image[..., 1], image[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = 128.0 - 0.168736 * r - 0.331264 * g + 0.5 * b
    cr = 128.0 + 0.5 * r - 0.418688 * g - 0.081312 * b
    return np.stack([y, cb, cr], axis=-1)


def downsample_2x2(plane: np.ndarray) -> np.ndarray:
    """2x2 box averaging for 4:2:0 chroma subsampling.

    Requires dimensions divisible by 16 so the subsampled plane still
    splits into 8x8 blocks.
    """
    h, w = plane.shape
    if h % 16 or w % 16:
        raise ValueError(
            f"4:2:0 subsampling needs dimensions divisible by 16, "
            f"got {plane.shape}")
    return plane.reshape(h // 2, 2, w // 2, 2).mean(axis=(1, 3))


def upsample_2x2(plane: np.ndarray) -> np.ndarray:
    """Nearest-neighbour inverse of :func:`downsample_2x2`."""
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)


def run_length_encode(ac: np.ndarray) -> list[tuple[int, int]]:
    """JPEG-style (run, value) pairs with (0, 0) end-of-block."""
    pairs: list[tuple[int, int]] = []
    run = 0
    for v in ac:
        v = int(v)
        if v == 0:
            run += 1
            if run == 16:
                pairs.append((15, 0))  # ZRL
                run = 0
        else:
            pairs.append((run, v))
            run = 0
    pairs.append((0, 0))  # EOB
    return pairs


def run_length_decode(pairs: list[tuple[int, int]], length: int = 63
                      ) -> np.ndarray:
    """Invert :func:`run_length_encode`."""
    out = np.zeros(length)
    pos = 0
    for run, value in pairs:
        if (run, value) == (0, 0):
            break
        if (run, value) == (15, 0):
            pos += 16
            continue
        pos += run
        if pos >= length:
            raise ValueError("run-length stream overruns the block")
        out[pos] = value
        pos += 1
    return out


def magnitude_category(value: int) -> int:
    """JPEG size category: bits needed for |value|."""
    return int(value).bit_length() if value else 0


def encoded_bits(dc_diffs: list[int],
                 ac_streams: list[list[tuple[int, int]]]) -> int:
    """Entropy-coded size of a plane, in bits.

    Canonical-Huffman approximation: each DC difference costs a category
    prefix (~2 + category/2 bits) plus its magnitude bits; each AC pair
    costs a (run, size) prefix (~4 + run/4 + size/2) plus magnitude bits.
    This tracks libjpeg's tables within a few percent on natural images.
    """
    bits = 0
    for diff in dc_diffs:
        cat = magnitude_category(diff)
        bits += 2 + cat // 2 + cat
    for stream in ac_streams:
        for run, value in stream:
            cat = magnitude_category(value)
            bits += 4 + run // 4 + cat // 2 + cat
    return bits


@dataclass
class EncodedPlane:
    """One channel's compressed representation."""

    height: int
    width: int
    quant: np.ndarray
    dc_diffs: list[int]
    ac_streams: list[list[tuple[int, int]]]

    @property
    def bits(self) -> int:
        return encoded_bits(self.dc_diffs, self.ac_streams)


class JPEGCompressor:
    """Baseline JPEG encoder with a pluggable DCT implementation."""

    def __init__(self, quality_scale: float = 1.0) -> None:
        if quality_scale <= 0:
            raise ValueError("quality_scale must be positive")
        self.quality_scale = quality_scale

    def _quant(self, table: np.ndarray) -> np.ndarray:
        return np.maximum(1.0, table * self.quality_scale)

    def encode_plane(self, plane: np.ndarray, chroma: bool = False,
                     dct_fn=None) -> EncodedPlane:
        """Encode one channel plane (dimensions multiples of 8)."""
        blocks = blocks_from_plane(plane - 128.0)
        if dct_fn is None:
            d = dct_matrix(8)
            coeffs = d @ blocks @ d.T
        else:
            coeffs = dct_fn(blocks)
        quant = self._quant(CHROMA_QUANT if chroma else LUMA_QUANT)
        quantized = np.round(coeffs / quant)
        dc = quantized[:, 0, 0].astype(int)
        dc_diffs = np.diff(dc, prepend=0).tolist()
        ac_streams = []
        flat = quantized.reshape(len(quantized), 64)[:, ZIGZAG]
        for row in flat:
            ac_streams.append(run_length_encode(row[1:]))
        return EncodedPlane(plane.shape[0], plane.shape[1],
                            quant, dc_diffs, ac_streams)

    def decode_plane(self, enc: EncodedPlane) -> np.ndarray:
        """Reconstruct a plane from its encoded form."""
        num_blocks = len(enc.dc_diffs)
        flat = np.zeros((num_blocks, 64))
        dc = np.cumsum(enc.dc_diffs)
        inverse_zz = np.argsort(ZIGZAG)
        for i in range(num_blocks):
            zz = np.concatenate(
                ([dc[i]], run_length_decode(enc.ac_streams[i])))
            flat[i] = zz[inverse_zz]
        coeffs = flat.reshape(num_blocks, 8, 8) * enc.quant
        blocks = idct2(coeffs) + 128.0
        return plane_from_blocks(blocks, enc.height, enc.width)


class JPEGWorkload(Workload):
    """JPEG compression of a 256x384 24-bit image (Section 4.2)."""

    name = "jpeg"

    def __init__(self, height: int = 256, width: int = 384,
                 seed: int = 41) -> None:
        if height % 8 or width % 8:
            raise ValueError("image dimensions must be multiples of 8")
        self.image = synthetic_image(height, width, 3, seed)
        self.height, self.width = height, width
        self.compressor = JPEGCompressor()

    @property
    def luma_blocks(self) -> int:
        return self.height * self.width // 64

    def phases(self) -> list[MatmulPhase]:
        # Two 8x8 matmul passes per block: D @ X then (D @ X) @ D.T.  As a
        # batched MVM job: matrix D (8x8), vectors = 8 columns per block
        # per pass.  The DCT matrix is reused across every block.
        vectors = 2 * 8 * self.luma_blocks
        return [MatmulPhase(
            name="dct",
            rows=8,
            cols=8,
            vectors=vectors,
            weight_reuse=vectors,
        )]

    def extra_core_ops(self) -> int:
        # Color conversion (~6 ops/px), quantization + zigzag + RLE/Huffman
        # (~8 ops per coefficient).
        px = self.height * self.width
        return px * 6 + self.luma_blocks * 64 * 8

    def _luma(self) -> np.ndarray:
        return rgb_to_ycbcr(self.image)[..., 0]

    def reference(self) -> np.ndarray:
        """Quantized luma DCT coefficients (the offloaded kernel's output)."""
        blocks = blocks_from_plane(self._luma() - 128.0)
        d = dct_matrix(8)
        return d @ blocks @ d.T

    def photonic(self, mzim_size: int = 8, wavelengths: int = 8
                 ) -> np.ndarray:
        """DCT computed through the MZIM (Section 5.4.1's mapping)."""
        blocks = blocks_from_plane(self._luma() - 128.0)
        d = dct_matrix(8)
        matmul = BlockMatmul(d, mzim_size, wavelengths)
        num = len(blocks)
        # Pass 1: D @ X for every block (columns of X as vectors).
        stage1 = matmul(blocks.transpose(0, 2, 1).reshape(num * 8, 8).T)
        stage1 = stage1.T.reshape(num, 8, 8).transpose(0, 2, 1)
        # Pass 2: result @ D.T == (D @ result.T).T per block.
        stage2 = matmul(stage1.reshape(num * 8, 8).T)
        return stage2.T.reshape(num, 8, 8)

    def compress(self, dct_fn=None,
                 subsample: bool = False) -> dict[str, EncodedPlane]:
        """Full-pipeline compression of all three channels.

        ``subsample`` enables 4:2:0 chroma subsampling (2x2 averaging of
        Cb/Cr before encoding), the standard JPEG configuration; the
        default 4:4:4 keeps full chroma resolution.
        """
        ycbcr = rgb_to_ycbcr(self.image)
        cb, cr = ycbcr[..., 1], ycbcr[..., 2]
        if subsample:
            cb = downsample_2x2(cb)
            cr = downsample_2x2(cr)
        return {
            "y": self.compressor.encode_plane(ycbcr[..., 0], False, dct_fn),
            "cb": self.compressor.encode_plane(cb, True, dct_fn),
            "cr": self.compressor.encode_plane(cr, True, dct_fn),
        }

    def compression_ratio(self, subsample: bool = False) -> float:
        planes = self.compress(subsample=subsample)
        compressed_bits = sum(p.bits for p in planes.values())
        raw_bits = self.height * self.width * 24
        return raw_bits / compressed_bits

    def block_matmuls(self, mzim_size: int = 8,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        phase = self.phases()[0]
        return {self.matrix_key(phase): BlockMatmul(
            dct_matrix(8), mzim_size, wavelengths)}
