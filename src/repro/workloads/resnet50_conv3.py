"""ResNet50 Conv3 benchmark: one conv3_x layer, 8-bit quantized.

Section 4.2: a (56 x 56 x 128) activation volume convolved with 128 (3 x 3)
weight kernels — approximately 8 million multiply-accumulate operations
(counting multiplies and adds; 3.6 M fused MACs).  The per-channel (3 x 3)
kernels make this a depthwise convolution; its high weight reuse (every
kernel slides over a full 56 x 56 plane) gives it the best energy reduction
of the partial-sum benchmarks (Section 5.4.1).
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import BlockMatmul, im2col
from repro.workloads.base import MatmulPhase, Workload


class ResNet50Conv3(Workload):
    """Depthwise (3x3) convolution over a 56x56x128 volume via im2col."""

    name = "resnet50_conv3"

    def __init__(self, height: int = 56, width: int = 56,
                 channels: int = 128, seed: int = 31) -> None:
        rng = np.random.default_rng(seed)
        self.volume = rng.integers(
            0, 128, size=(height, width, channels)).astype(float) / 127.0
        self.kernels = rng.integers(
            -127, 128, size=(channels, 3, 3)).astype(float) / 127.0
        self.height, self.width, self.channels = height, width, channels
        #: The block-diagonal weight matrix programs only ~9 blocks per
        #: block row (one per kernel tap); the rest are zero and skipped.
        import math as _math
        block_cols = _math.ceil(9 * channels / 8)
        self.nonzero_block_fraction = min(1.0, 9.0 / block_cols)

    def phases(self) -> list[MatmulPhase]:
        fields = self.height * self.width
        # Per-channel kernel as one (channels x 9*channels) block-diagonal
        # weight matrix, reused across every receptive field.
        return [MatmulPhase(
            name="conv3",
            rows=self.channels,
            cols=9 * self.channels,
            vectors=fields,
            weight_reuse=fields,
        )]

    def extra_core_ops(self) -> int:
        # im2col gather (vectorized strided copies) + ReLU + store per
        # output element.
        return self.height * self.width * self.channels * 6

    def _weight_matrix(self) -> np.ndarray:
        w = np.zeros((self.channels, 9 * self.channels))
        for c in range(self.channels):
            w[c, c::self.channels] = self.kernels[c].ravel()
        return w

    def total_macs(self) -> int:
        # Only the diagonal blocks multiply non-zeros: 9 taps per output.
        return self.height * self.width * self.channels * 9

    def reference(self) -> np.ndarray:
        cols = im2col(self.volume, (3, 3), stride=1, padding=1)
        out = self._weight_matrix() @ cols
        return out.reshape(self.channels, self.height, self.width)

    def photonic(self, mzim_size: int = 8, wavelengths: int = 8
                 ) -> np.ndarray:
        cols = im2col(self.volume, (3, 3), stride=1, padding=1)
        matmul = BlockMatmul(self._weight_matrix(), mzim_size, wavelengths)
        out = matmul(cols)
        return out.reshape(self.channels, self.height, self.width)

    def block_matmuls(self, mzim_size: int = 8,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        phase = self.phases()[0]
        return {self.matrix_key(phase): BlockMatmul(
            self._weight_matrix(), mzim_size, wavelengths)}
