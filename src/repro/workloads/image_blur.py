"""Image Blur benchmark: 3x3 Gaussian blur of a 256x256 24-bit image.

Section 4.2: "applies a (3x3) Gaussian blur kernel to a (256x256) pixel
24-bit color image ... approximately 1.7 million multiply-accumulate
operations.  The Gaussian blur kernel weights are implemented in the MZIM,
and receptive field patches are streamed as the optical inputs."

The convolution is lowered with im2col (Figure 7): the per-channel blur is
a (1 x 9) kernel row applied to 9 x 65536 receptive-field columns per
channel; 256*256*3*9 = 1.77 M MACs.
"""

from __future__ import annotations

import numpy as np

from repro.core.accelerator import BlockMatmul, im2col
from repro.workloads.base import MatmulPhase, Workload


def gaussian_kernel_3x3(sigma: float = 0.85) -> np.ndarray:
    """Normalized 3x3 Gaussian blur kernel."""
    ax = np.array([-1.0, 0.0, 1.0])
    g = np.exp(-(ax ** 2) / (2.0 * sigma ** 2))
    k = np.outer(g, g)
    return k / k.sum()


def synthetic_image(height: int = 256, width: int = 256,
                    channels: int = 3, seed: int = 11) -> np.ndarray:
    """Deterministic 8-bit test image with smooth + textured content."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    base = (np.sin(xx / 17.0) + np.cos(yy / 23.0) + 2.0) / 4.0
    img = np.empty((height, width, channels))
    for c in range(channels):
        texture = rng.random((height, width)) * 0.25
        img[:, :, c] = np.clip(base * (0.6 + 0.2 * c) + texture, 0, 1)
    return np.round(img * 255.0)


class ImageBlur(Workload):
    """3x3 Gaussian blur via MZIM convolution (Figure 7 organization)."""

    name = "image_blur"

    def __init__(self, height: int = 256, width: int = 256,
                 channels: int = 3, seed: int = 11) -> None:
        self.image = synthetic_image(height, width, channels, seed)
        self.kernel = gaussian_kernel_3x3()
        self.height, self.width, self.channels = self.image.shape

    def phases(self) -> list[MatmulPhase]:
        fields = self.height * self.width  # padding preserves resolution
        return [MatmulPhase(
            name="blur",
            rows=self.channels,
            cols=9 * self.channels,
            vectors=fields,
            weight_reuse=fields,
        )]

    def extra_core_ops(self) -> int:
        # Receptive-field gathering (im2col index math + boundary checks:
        # ~12 ops/pixel/chan) and pixel unpack/clamp/store (~4).
        return self.height * self.width * self.channels * 16

    def total_macs(self) -> int:
        """Only the 9 kernel taps per output are real multiplies:
        256*256*3*9 = 1.77 M (the paper's ~1.7 M)."""
        return self.height * self.width * self.channels * 9

    def _weight_matrix(self) -> np.ndarray:
        """Block-diagonal per-channel blur: channels x (9 * channels)."""
        w = np.zeros((self.channels, 9 * self.channels))
        flat = self.kernel.ravel()
        for c in range(self.channels):
            # im2col ravels patches as (ky, kx, channel); channel c's taps
            # sit at positions k * channels + c.
            w[c, c::self.channels] = flat
        return w

    def reference(self) -> np.ndarray:
        """Golden blur, edge pixels via zero padding."""
        cols = im2col(self.image, (3, 3), stride=1, padding=1)
        out = self._weight_matrix() @ cols
        return out.reshape(self.channels, self.height, self.width)

    def photonic(self, mzim_size: int = 8, wavelengths: int = 8
                 ) -> np.ndarray:
        cols = im2col(self.image, (3, 3), stride=1, padding=1)
        matmul = BlockMatmul(self._weight_matrix(), mzim_size, wavelengths)
        out = matmul(cols)
        return out.reshape(self.channels, self.height, self.width)

    def block_matmuls(self, mzim_size: int = 8,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        phase = self.phases()[0]
        return {self.matrix_key(phase): BlockMatmul(
            self._weight_matrix(), mzim_size, wavelengths)}
