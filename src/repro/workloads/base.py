"""Workload abstraction for the five evaluated applications (Section 4.2).

A workload exposes:

* its **matmul phases** — the linear-algebra kernels eligible for MZIM
  offload, each an ``(rows x cols) @ (cols x vectors)`` product with an
  operand-reuse descriptor;
* its **extra core ops** — the non-offloadable work (address generation,
  gathering receptive fields, entropy coding, ...) that stays on the
  chiplets under every topology;
* **address streams** feeding the cache hierarchy simulation;
* a **golden reference** computation and a photonic execution path, so
  numerical equivalence is testable end to end.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.accelerator import BlockMatmul
from repro.multicore.cache import strided_stream

#: Synthetic memory map: distinct regions so streams don't falsely alias.
WEIGHT_BASE = 0x1000_0000
INPUT_BASE = 0x2000_0000
OUTPUT_BASE = 0x3000_0000
SCRATCH_BASE = 0x4000_0000


@dataclass(frozen=True)
class MatmulPhase:
    """One offloadable matrix-multiplication kernel."""

    name: str
    rows: int
    cols: int
    vectors: int
    #: Times each weight element is reused across the phase (drives both
    #: cache behaviour and the MZIM matrix-switch count).
    weight_reuse: int = 1
    #: Element width in bytes (8-bit quantized throughout the paper).
    elem_b: int = 1

    @property
    def macs(self) -> int:
        return self.rows * self.cols * self.vectors

    @property
    def weight_bytes(self) -> int:
        return self.rows * self.cols * self.elem_b

    @property
    def input_bytes(self) -> int:
        return self.cols * self.vectors * self.elem_b

    @property
    def output_bytes(self) -> int:
        return self.rows * self.vectors * self.elem_b


class Workload(abc.ABC):
    """Interface every benchmark application implements."""

    name: str = "abstract"

    @abc.abstractmethod
    def phases(self) -> list[MatmulPhase]:
        """Offloadable matmul kernels in execution order."""

    @abc.abstractmethod
    def extra_core_ops(self) -> int:
        """Non-offloadable core operations (stay on chiplets always)."""

    @abc.abstractmethod
    def reference(self) -> np.ndarray:
        """Golden CPU (NumPy) result."""

    @abc.abstractmethod
    def photonic(self, mzim_size: int = 8,
                 wavelengths: int = 8) -> np.ndarray:
        """The same computation through :class:`BlockMatmul` circuits."""

    # -- shared helpers ----------------------------------------------------

    def total_macs(self) -> int:
        return sum(p.macs for p in self.phases())

    def address_streams(self):
        """Yield (phase, stream) pairs for cache simulation.

        The default models each phase as: a weight stream repeated
        ``weight_reuse`` times (capped to bound simulation cost — reuse
        beyond a few passes is already fully resident), an input stream,
        and an output stream, at cache-line granularity.
        """
        line = 64
        for phase in self.phases():
            repeats = int(np.clip(phase.weight_reuse, 1, 4))
            weight = strided_stream(
                WEIGHT_BASE, max(1, phase.weight_bytes // line), line,
                repeats=repeats)
            inputs = strided_stream(
                INPUT_BASE, max(1, phase.input_bytes // line), line)
            outputs = strided_stream(
                OUTPUT_BASE, max(1, phase.output_bytes // line), line)
            yield phase, _chain(weight, inputs, outputs)

    def block_matmuls(self, mzim_size: int = 8,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        """Precompute the per-phase MZIM programs (the matrix memory load).

        Base implementation raises; workloads that override
        :meth:`photonic` with their own circuits may not need it.
        """
        raise NotImplementedError

    def matrix_key(self, phase: MatmulPhase) -> str:
        return f"{self.name}/{phase.name}"


def _chain(*iterables):
    for it in iterables:
        yield from it


def verify_photonic(workload: Workload, rtol: float = 1e-6,
                    atol: float = 1e-8) -> float:
    """Max abs error between photonic and reference results."""
    ref = workload.reference()
    opt = workload.photonic()
    if ref.shape != opt.shape:
        raise AssertionError(
            f"{workload.name}: shape mismatch {ref.shape} vs {opt.shape}")
    err = float(np.max(np.abs(ref - opt)))
    scale = float(np.max(np.abs(ref))) or 1.0
    if err > max(atol, rtol * scale):
        raise AssertionError(
            f"{workload.name}: photonic result diverges (err={err})")
    return err
