"""The five evaluated applications (Section 4.2), with golden references."""

from repro.workloads.base import (
    MatmulPhase,
    Workload,
    verify_photonic,
)
from repro.workloads.dct import (
    blocks_from_plane,
    dct2,
    dct_matrix,
    idct2,
    plane_from_blocks,
)
from repro.workloads.image_blur import (
    ImageBlur,
    gaussian_kernel_3x3,
    synthetic_image,
)
from repro.workloads.jpeg import (
    CHROMA_QUANT,
    LUMA_QUANT,
    JPEGCompressor,
    JPEGWorkload,
    rgb_to_ycbcr,
    run_length_decode,
    run_length_encode,
    zigzag_order,
)
from repro.workloads.resnet50_conv3 import ResNet50Conv3
from repro.workloads.rotation3d import (
    Rotation3D,
    rotation_matrix,
    wireframe_vertices,
)
from repro.workloads.vgg16_fc import VGG16FC, quantized_weights


#: name -> zero-arg factory at the paper-specified shapes.  Keys match
#: each class's ``name`` attribute (pinned by a test) so a single
#: workload can be built by name without instantiating all five — the
#: paper-shape constructors generate multi-megabyte weight tensors, and
#: sweep tasks resolve workloads once per point.
PAPER_FACTORIES: dict[str, "type[Workload] | object"] = {
    ImageBlur.name: ImageBlur,
    VGG16FC.name: VGG16FC,
    ResNet50Conv3.name: ResNet50Conv3,
    JPEGWorkload.name: JPEGWorkload,
    Rotation3D.name: Rotation3D,
}

#: name -> zero-arg factory at reduced shapes: same structure, smaller
#: data, for fast tests and the perf smoke sweep.
SMALL_FACTORIES: dict[str, "object"] = {
    ImageBlur.name: lambda: ImageBlur(height=32, width=32),
    VGG16FC.name: lambda: VGG16FC(outputs=64, inputs=128),
    ResNet50Conv3.name: lambda: ResNet50Conv3(height=14, width=14,
                                              channels=16),
    JPEGWorkload.name: lambda: JPEGWorkload(height=32, width=48),
    Rotation3D.name: lambda: Rotation3D(vertices=34),
}

WORKLOAD_NAMES = tuple(PAPER_FACTORIES)


def make_workload(name: str, shapes: str = "paper") -> Workload:
    """Build one benchmark by name at the requested shape set."""
    if shapes == "paper":
        factories = PAPER_FACTORIES
    elif shapes == "small":
        factories = SMALL_FACTORIES
    else:
        raise ValueError(f"unknown shapes {shapes!r}; "
                         f"use 'paper' or 'small'")
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; "
                         f"known: {sorted(factories)}") from None
    return factory()


def paper_workloads() -> list[Workload]:
    """The five benchmarks at their paper-specified shapes."""
    return [factory() for factory in PAPER_FACTORIES.values()]


def small_workloads() -> list[Workload]:
    """Reduced shapes for fast tests: same structure, smaller data."""
    return [factory() for factory in SMALL_FACTORIES.values()]


__all__ = [
    "CHROMA_QUANT",
    "ImageBlur",
    "JPEGCompressor",
    "JPEGWorkload",
    "LUMA_QUANT",
    "MatmulPhase",
    "PAPER_FACTORIES",
    "SMALL_FACTORIES",
    "WORKLOAD_NAMES",
    "ResNet50Conv3",
    "Rotation3D",
    "VGG16FC",
    "Workload",
    "blocks_from_plane",
    "dct2",
    "dct_matrix",
    "gaussian_kernel_3x3",
    "idct2",
    "make_workload",
    "paper_workloads",
    "plane_from_blocks",
    "quantized_weights",
    "rgb_to_ycbcr",
    "rotation_matrix",
    "run_length_decode",
    "run_length_encode",
    "small_workloads",
    "synthetic_image",
    "verify_photonic",
    "wireframe_vertices",
    "zigzag_order",
]
