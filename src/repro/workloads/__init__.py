"""The five evaluated applications (Section 4.2), with golden references."""

from repro.workloads.base import (
    MatmulPhase,
    Workload,
    verify_photonic,
)
from repro.workloads.dct import (
    blocks_from_plane,
    dct2,
    dct_matrix,
    idct2,
    plane_from_blocks,
)
from repro.workloads.image_blur import (
    ImageBlur,
    gaussian_kernel_3x3,
    synthetic_image,
)
from repro.workloads.jpeg import (
    CHROMA_QUANT,
    LUMA_QUANT,
    JPEGCompressor,
    JPEGWorkload,
    rgb_to_ycbcr,
    run_length_decode,
    run_length_encode,
    zigzag_order,
)
from repro.workloads.resnet50_conv3 import ResNet50Conv3
from repro.workloads.rotation3d import (
    Rotation3D,
    rotation_matrix,
    wireframe_vertices,
)
from repro.workloads.vgg16_fc import VGG16FC, quantized_weights


def paper_workloads() -> list[Workload]:
    """The five benchmarks at their paper-specified shapes."""
    return [ImageBlur(), VGG16FC(), ResNet50Conv3(), JPEGWorkload(),
            Rotation3D()]


def small_workloads() -> list[Workload]:
    """Reduced shapes for fast tests: same structure, smaller data."""
    return [
        ImageBlur(height=32, width=32),
        VGG16FC(outputs=64, inputs=128),
        ResNet50Conv3(height=14, width=14, channels=16),
        JPEGWorkload(height=32, width=48),
        Rotation3D(vertices=34),
    ]


__all__ = [
    "CHROMA_QUANT",
    "ImageBlur",
    "JPEGCompressor",
    "JPEGWorkload",
    "LUMA_QUANT",
    "MatmulPhase",
    "ResNet50Conv3",
    "Rotation3D",
    "VGG16FC",
    "Workload",
    "blocks_from_plane",
    "dct2",
    "dct_matrix",
    "gaussian_kernel_3x3",
    "idct2",
    "paper_workloads",
    "plane_from_blocks",
    "quantized_weights",
    "rgb_to_ycbcr",
    "rotation_matrix",
    "run_length_decode",
    "run_length_encode",
    "small_workloads",
    "synthetic_image",
    "verify_photonic",
    "wireframe_vertices",
    "zigzag_order",
]
