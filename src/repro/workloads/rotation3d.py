"""3D Rotation benchmark: rotating a 306-vertex wire-frame object.

Section 4.2: each vertex is a 4-element homogeneous vector; the
transformation matrix is (4 x 4).  The rotation matrix maps onto two
4-input SVD sub-MZIMs with no partial sums to accumulate, which is why
this benchmark shows the largest energy reduction (Section 5.4.1).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.accelerator import BlockMatmul
from repro.workloads.base import MatmulPhase, Workload


def wireframe_vertices(count: int = 306, seed: int = 53) -> np.ndarray:
    """A deterministic wire-frame object: a latitude/longitude sphere mesh.

    Returns homogeneous coordinates of shape ``(4, count)``.
    """
    rings = 17
    per_ring = count // rings
    vertices = []
    for r in range(rings):
        phi = math.pi * (r + 0.5) / rings
        for s in range(per_ring):
            theta = 2.0 * math.pi * s / per_ring
            vertices.append((math.sin(phi) * math.cos(theta),
                             math.sin(phi) * math.sin(theta),
                             math.cos(phi)))
    rng = np.random.default_rng(seed)
    while len(vertices) < count:
        v = rng.normal(size=3)
        vertices.append(tuple(v / np.linalg.norm(v)))
    pts = np.array(vertices[:count]).T  # (3, count)
    return np.vstack([pts, np.ones(count)])


def rotation_matrix(yaw: float, pitch: float, roll: float) -> np.ndarray:
    """Homogeneous (4 x 4) rotation: Rz(yaw) @ Ry(pitch) @ Rx(roll)."""
    cy, sy = math.cos(yaw), math.sin(yaw)
    cp, sp = math.cos(pitch), math.sin(pitch)
    cr, sr = math.cos(roll), math.sin(roll)
    rz = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1]])
    ry = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rx = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    hom = np.eye(4)
    hom[:3, :3] = rz @ ry @ rx
    return hom


class Rotation3D(Workload):
    """Rotate a wire-frame object through the MZIM."""

    name = "rotation3d"
    #: A 306-vertex transform does not scale across many cores; two cores
    #: (one chiplet pair) is the realistic parallelism.
    parallel_cores = 2

    def __init__(self, vertices: int = 306,
                 yaw: float = 0.61, pitch: float = 0.37,
                 roll: float = 0.23, seed: int = 53) -> None:
        self.vertices = wireframe_vertices(vertices, seed)
        self.matrix = rotation_matrix(yaw, pitch, roll)
        self.count = vertices

    def phases(self) -> list[MatmulPhase]:
        return [MatmulPhase(
            name="rotate",
            rows=4,
            cols=4,
            vectors=self.count,
            weight_reuse=self.count,
            elem_b=4,  # fp32 vertex data
        )]

    def extra_core_ops(self) -> int:
        # Perspective divide + viewport transform + edge draw per vertex.
        return self.count * 12

    def reference(self) -> np.ndarray:
        return self.matrix @ self.vertices

    def photonic(self, mzim_size: int = 4, wavelengths: int = 8
                 ) -> np.ndarray:
        matmul = BlockMatmul(self.matrix, mzim_size, wavelengths)
        return matmul(self.vertices)

    def block_matmuls(self, mzim_size: int = 4,
                      wavelengths: int = 8) -> dict[str, BlockMatmul]:
        phase = self.phases()[0]
        return {self.matrix_key(phase): BlockMatmul(
            self.matrix, mzim_size, wavelengths)}

    def rotations_preserve_length(self) -> bool:
        """Invariant: rotation does not change vertex norms."""
        before = np.linalg.norm(self.vertices[:3], axis=0)
        after = np.linalg.norm(self.reference()[:3], axis=0)
        return bool(np.allclose(before, after))
